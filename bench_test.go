package cloudmap

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// exercises the stage that regenerates its table/figure and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the reproduction harness at test scale (cmd/experiments is the
// paper-scale run).

import (
	"sync"
	"testing"

	"cloudmap/internal/border"
	"cloudmap/internal/grouping"
	"cloudmap/internal/icg"
	"cloudmap/internal/midar"
	"cloudmap/internal/pinning"
	"cloudmap/internal/probe"
	"cloudmap/internal/stats"
	"cloudmap/internal/verify"
	"cloudmap/internal/vpi"

	bdr "cloudmap/internal/bdrmap"
)

// benchState shares one simulated world and pipeline run across benches.
type benchState struct {
	sys *System
	res *Result
}

var (
	benchOnce sync.Once
	benchVal  *benchState
	benchErr  error
)

func benchSetup(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		cfg := SmallConfig()
		sys, err := NewSystem(cfg)
		if err != nil {
			benchErr = err
			return
		}
		res, err := RunOn(sys, cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchVal = &benchState{sys: sys, res: res}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// BenchmarkTable1BorderInference regenerates Table 1: the two probing rounds
// plus the §4.1 border walk.
func BenchmarkTable1BorderInference(b *testing.B) {
	s := benchSetup(b)
	targets := probe.Round1Targets(s.sys.Topology, probe.Round1Options{})
	vms := s.sys.Prober.VMs("amazon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf := border.New(s.sys.Registry, "amazon")
		if err := s.sys.Prober.Campaign(vms, targets, inf.Consume); err != nil {
			b.Fatal(err)
		}
		inf.BeginRound2()
		if err := s.sys.Prober.Campaign(vms, probe.ExpansionTargets(inf.CandidateCBIs()), inf.Consume); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(inf.BreakdownABIs().Total), "ABIs")
			b.ReportMetric(float64(inf.BreakdownCBIs().Total), "CBIs")
		}
	}
}

// BenchmarkTable2Heuristics regenerates Table 2: the verification heuristics
// plus alias-set corrections.
func BenchmarkTable2Heuristics(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := verify.Run(s.res.Border, s.sys.Registry, s.sys.Prober.ReachableFromVP, s.res.Aliases, verify.DefaultOptions())
		if i == 0 {
			total := len(s.res.Border.CandidateABIs())
			b.ReportMetric(100*float64(total-v.UnconfirmedABIs)/float64(total), "%confirmed")
		}
	}
}

// BenchmarkMIDARAliasResolution regenerates the §5.2 alias sets.
func BenchmarkMIDARAliasResolution(b *testing.B) {
	s := benchSetup(b)
	targets := append(s.res.Border.CandidateABIs(), s.res.Border.CandidateCBIs()...)
	vms := s.sys.Prober.VMs("amazon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sets := midar.Resolve(s.sys.Prober, vms, targets, midar.DefaultConfig())
		if i == 0 {
			b.ReportMetric(float64(len(sets)), "alias-sets")
		}
	}
}

// BenchmarkTable3Pinning regenerates Table 3: anchors, co-presence
// propagation, and the region fallback.
func BenchmarkTable3Pinning(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pinning.Run(s.res.Verified, s.res.Border, s.sys.Registry, s.sys.Prober, s.res.Aliases, pinning.DefaultOptions())
		if i == 0 {
			b.ReportMetric(100*float64(len(p.Metro))/float64(p.TotalIfaces), "%pinned")
		}
	}
}

// BenchmarkPinningCrossValidation regenerates §6.2's precision/recall.
func BenchmarkPinningCrossValidation(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv := pinning.CrossValidate(s.res.Pinning, s.res.Aliases, 10, 0.7, 1)
		if i == 0 {
			b.ReportMetric(100*cv.Precision, "%precision")
			b.ReportMetric(100*cv.Recall, "%recall")
		}
	}
}

// BenchmarkFig4aABIRTTCDF regenerates Fig. 4a's distribution and knee.
func BenchmarkFig4aABIRTTCDF(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCDF(s.res.Pinning.ABIMinRTTs)
		_ = c.Knee()
		if i == 0 {
			b.ReportMetric(s.res.Pinning.NativeKnee, "knee-ms")
			b.ReportMetric(100*c.FracBelow(2), "%under-2ms")
		}
	}
}

// BenchmarkFig4bSegmentRTTDiff regenerates Fig. 4b.
func BenchmarkFig4bSegmentRTTDiff(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCDF(s.res.Pinning.SegmentDiffs)
		_ = c.Knee()
		if i == 0 {
			b.ReportMetric(s.res.Pinning.SegKnee, "knee-ms")
			b.ReportMetric(100*c.FracBelow(2), "%under-2ms")
		}
	}
}

// BenchmarkFig5RegionRatio regenerates Fig. 5.
func BenchmarkFig5RegionRatio(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCDF(s.res.Pinning.RegionRatios)
		above := 1 - c.FracBelow(1.5)
		if i == 0 {
			b.ReportMetric(100*above, "%ratio>1.5")
		}
	}
}

// BenchmarkTable4VPIDetection regenerates Table 4: foreign-cloud probing and
// CBI overlap.
func BenchmarkTable4VPIDetection(b *testing.B) {
	s := benchSetup(b)
	clouds := []string{"microsoft", "google", "ibm", "oracle"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := vpi.Detect(s.sys.Prober, s.sys.Registry, s.res.Border, clouds)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*float64(len(v.VPICBIs))/float64(v.AmazonNonIXPCBIs), "%vpi-share")
		}
	}
}

// BenchmarkTable5Grouping regenerates Table 5 (and the Fig. 6 features).
func BenchmarkTable5Grouping(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := grouping.Classify(s.res.Verified, s.res.Border, s.sys.Registry, s.res.VPI, s.res.Pinning)
		if i == 0 {
			b.ReportMetric(100*g.HiddenShare, "%hidden")
		}
	}
}

// BenchmarkTable6HybridPeering regenerates Table 6 (combo extraction is part
// of Classify; this bench isolates repeated classification over the same
// inputs to size the stage).
func BenchmarkTable6HybridPeering(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := grouping.Classify(s.res.Verified, s.res.Border, s.sys.Registry, s.res.VPI, s.res.Pinning)
		if i == 0 {
			b.ReportMetric(float64(len(g.Combos)), "combos")
		}
	}
}

// BenchmarkFig6GroupFeatures isolates the Fig. 6 feature summarisation.
func BenchmarkFig6GroupFeatures(b *testing.B) {
	s := benchSetup(b)
	g := s.res.Groups
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, feats := range g.Fig6 {
			for _, bp := range feats {
				if bp.N > 0 {
					n++
				}
			}
		}
		if i == 0 {
			b.ReportMetric(float64(n), "feature-cells")
		}
	}
}

// BenchmarkFig7ICGDegrees regenerates Fig. 7: ICG construction, degree CDFs,
// and component analysis.
func BenchmarkFig7ICGDegrees(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := icg.Build(s.res.Verified, s.res.Pinning, s.sys.Registry.World)
		if i == 0 {
			b.ReportMetric(100*g.LargestCCFrac, "%largest-cc")
		}
	}
}

// BenchmarkHiddenPeerings isolates the §7.2 hidden-share computation (it is
// part of Classify; reported separately for the experiment index).
func BenchmarkHiddenPeerings(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := grouping.Classify(s.res.Verified, s.res.Border, s.sys.Registry, s.res.VPI, s.res.Pinning)
		if i == 0 {
			b.ReportMetric(float64(g.HiddenPeerings), "hidden")
			b.ReportMetric(float64(g.BeyondBGP), "beyond-bgp")
		}
	}
}

// BenchmarkTable8Bdrmap regenerates the §8 baseline comparison.
func BenchmarkTable8Bdrmap(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runs, err := bdr.Run(s.sys.Prober, s.sys.Registry, "amazon", bdr.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cmp := bdr.Compare(runs, s.res.Verified, s.sys.Registry)
		if i == 0 {
			b.ReportMetric(float64(cmp.Flipped), "flips")
			b.ReportMetric(float64(cmp.MultiOwnerCBIs), "multi-owner")
		}
	}
}

// --- ablations -----------------------------------------------------------

// BenchmarkAblationNoExpansion measures what §4.2's expansion round buys:
// the CBI delta it contributes.
func BenchmarkAblationNoExpansion(b *testing.B) {
	s := benchSetup(b)
	targets := probe.Round1Targets(s.sys.Topology, probe.Round1Options{})
	vms := s.sys.Prober.VMs("amazon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf := border.New(s.sys.Registry, "amazon")
		if err := s.sys.Prober.Campaign(vms, targets, inf.Consume); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			withExpansion := s.res.Border.BreakdownCBIs().Total
			b.ReportMetric(float64(withExpansion-inf.BreakdownCBIs().Total), "CBIs-lost")
		}
	}
}

// BenchmarkAblationNoAliasSets measures verification without §5.2.
func BenchmarkAblationNoAliasSets(b *testing.B) {
	s := benchSetup(b)
	opts := verify.DefaultOptions()
	opts.UseAliasSets = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := verify.Run(s.res.Border, s.sys.Registry, s.sys.Prober.ReachableFromVP, nil, opts)
		if i == 0 {
			b.ReportMetric(float64(s.res.Verified.ABIToCBI-v.ABIToCBI), "corrections-lost")
		}
	}
}

// BenchmarkAblationAnchorFamilies measures pinning coverage without the DNS
// anchor family (the largest contributor in Table 3).
func BenchmarkAblationAnchorFamilies(b *testing.B) {
	s := benchSetup(b)
	opts := pinning.DefaultOptions()
	opts.DisableDNS = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pinning.Run(s.res.Verified, s.res.Border, s.sys.Registry, s.sys.Prober, s.res.Aliases, opts)
		if i == 0 {
			full := float64(len(s.res.Pinning.Metro))
			b.ReportMetric(100*(full-float64(len(p.Metro)))/full, "%coverage-lost")
		}
	}
}

// BenchmarkAblationSingleVPICloud measures the lower-bound growth from
// probing more clouds: Microsoft alone vs all four.
func BenchmarkAblationSingleVPICloud(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := vpi.Detect(s.sys.Prober, s.sys.Registry, s.res.Border, []string{"microsoft"})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			all := float64(len(s.res.VPI.VPICBIs))
			b.ReportMetric(100*float64(len(v.VPICBIs))/all, "%of-4cloud-bound")
		}
	}
}

// BenchmarkAblationNoOrgGrouping runs the border walk at single-ASN
// granularity (ignoring Amazon's sibling ASNs): the paper's footnote-4
// grouping exists precisely because this produces spurious "CBIs" inside
// Amazon's own WHOIS space.
func BenchmarkAblationNoOrgGrouping(b *testing.B) {
	s := benchSetup(b)
	targets := probe.Round1Targets(s.sys.Topology, probe.Round1Options{})
	vms := s.sys.Prober.VMs("amazon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inf := border.New(s.sys.Registry, "amazon")
		inf.DisableOrgGrouping(16509)
		if err := s.sys.Prober.Campaign(vms, targets, inf.Consume); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			spurious := 0
			for _, ci := range inf.CBIs {
				if s.sys.Registry.AmazonASNs[ci.Ann.ASN] {
					spurious++
				}
			}
			b.ReportMetric(float64(spurious), "amazon-space-CBIs")
		}
	}
}

// BenchmarkAblationCollectorCount regenerates a world with a far denser BGP
// collector deployment and measures how much more of the AS-relationship
// fabric becomes visible: the inference's BGP inputs are only as good as
// collector placement. (The small-scale default bottoms out at 4 feeds, so
// the sweep goes upward.)
func BenchmarkAblationCollectorCount(b *testing.B) {
	base := benchSetup(b)
	baseLinks := len(base.sys.Registry.Links)
	baseAmazon := len(base.sys.Registry.AmazonLinksInBGP())
	cfg := SmallConfig()
	cfg.Topology.CollectorFeeds = 1000 // 40 feeds after scaling, vs the default 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(sys.Registry.Links))/float64(baseLinks), "links-growth")
			b.ReportMetric(float64(len(sys.Registry.AmazonLinksInBGP()))/float64(maxInt(baseAmazon, 1)), "amazon-links-growth")
		}
	}
}
