// Package cloudmap reproduces the measurement study "How Cloud Traffic Goes
// Hiding: A Study of Amazon's Peering Fabric" (IMC 2019) end to end: it
// simulates an Internet with a ground-truth cloud peering fabric, runs the
// paper's cloud-centric traceroute campaigns against it, and applies the
// paper's inference pipeline — border inference (§4), verification (§5),
// pinning (§6), VPI detection and peering classification (§7), and the
// bdrmap comparison (§8) — using only measurement data and public datasets.
//
// The package is the orchestration layer: each stage lives in its own
// internal package and is reusable on its own. A full run is:
//
//	res, err := cloudmap.Run(cloudmap.SmallConfig())
//
// after which res holds every table and figure of the paper's evaluation.
// RunPipeline is the staged form of the same run: an explicit stage DAG
// with per-stage metrics, context cancellation, tracefile checkpointing of
// the probing campaigns, resume from stored traces, and a JSON run
// manifest.
package cloudmap

import (
	"context"
	"fmt"
	"runtime"

	"cloudmap/internal/bdrmap"
	"cloudmap/internal/border"
	"cloudmap/internal/datasets"
	"cloudmap/internal/faults"
	"cloudmap/internal/midar"
	"cloudmap/internal/model"
	"cloudmap/internal/pinning"
	"cloudmap/internal/probe"
	"cloudmap/internal/registry"
	"cloudmap/internal/route"
	"cloudmap/internal/topo"
	"cloudmap/internal/verify"
)

// Config selects the scale of the simulated Internet and tunes each
// pipeline stage.
type Config struct {
	// Topology generation (world scale, peering mix, measurement
	// behaviour).
	Topology topo.Config
	// Verify toggles the §5 heuristics.
	Verify verify.Options
	// Pinning tunes §6.
	Pinning pinning.Options
	// Midar tunes alias resolution.
	Midar midar.Config

	// IncludePrivateTargets probes 10/8 and 100.64/10 as the paper does.
	IncludePrivateTargets bool
	// SkipExpansion disables the §4.2 round (ablation).
	SkipExpansion bool
	// SkipAliasResolution disables MIDAR (ablation); verification then runs
	// without alias sets.
	SkipAliasResolution bool
	// VPIClouds are the foreign clouds probed for §7.1 overlap detection.
	VPIClouds []string
	// CVFolds is the number of cross-validation folds for §6.2.
	CVFolds int
	// SkipBdrmap disables the §8 baseline comparison.
	SkipBdrmap bool
	// Bdrmap tunes the §8 baseline.
	Bdrmap bdrmap.Config
	// Faults, when non-nil, layers the deterministic fault model under the
	// probing campaigns: ICMP rate limiters, bursty loss, link flaps, and
	// region outages, all replayable from the plan+topology seed (see
	// internal/faults). Nil probes a fault-free world.
	Faults *faults.Plan
	// Dirty, when non-nil, corrupts the serialized input datasets before
	// the hygiene layer parses them back: row drops, truncation, staleness,
	// conflicting duplicates, bogon ASNs — all replayable from the
	// plan+topology seed (see internal/datasets). Nil round-trips the
	// datasets faithfully.
	Dirty *datasets.DirtyPlan
	// Retry governs re-probing of fault-degraded traceroutes (attempts,
	// virtual-time backoff, campaign retry budget). The zero value probes
	// each target once.
	Retry probe.RetryPolicy
	// Workers parallelises the probing campaigns across goroutines
	// (results stay byte-identical to a sequential run). <=0 defaults to
	// runtime.GOMAXPROCS(0); 1 means sequential.
	Workers int
	// RecordTraces, when non-nil, receives a copy of every Amazon-campaign
	// traceroute (rounds 1 and 2) — wire it to a tracefile.Writer to
	// archive the campaign for later replay.
	RecordTraces probe.TraceSink
}

// DefaultConfig is the paper-comparable scale (minutes of CPU).
func DefaultConfig() Config {
	return Config{
		Topology:              topo.DefaultConfig(),
		Verify:                verify.DefaultOptions(),
		Pinning:               pinning.DefaultOptions(),
		Midar:                 midar.DefaultConfig(),
		IncludePrivateTargets: true,
		VPIClouds:             []string{"microsoft", "google", "ibm", "oracle"},
		CVFolds:               10,
		Bdrmap:                bdrmap.DefaultConfig(),
	}
}

// SmallConfig is a test-sized configuration (seconds of CPU).
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = topo.SmallConfig()
	cfg.IncludePrivateTargets = false
	return cfg
}

// MediumConfig sits between the two; benchmarks use it.
func MediumConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = topo.MediumConfig()
	cfg.IncludePrivateTargets = false
	return cfg
}

// System bundles the simulated world and its measurement plane.
type System struct {
	Topology  *model.Topology
	Registry  *registry.Registry
	Forwarder *route.Forwarder
	Prober    *probe.Prober
}

// NewSystem generates the topology and builds datasets and probers.
func NewSystem(cfg Config) (*System, error) {
	t, err := topo.Generate(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("cloudmap: topology generation: %w", err)
	}
	reg := registry.Build(t, cfg.Topology.Seed)
	fwd := route.NewForwarder(t)
	pr := probe.NewProber(t, fwd)
	inj, err := faults.New(cfg.Faults, t) // nil plan -> nil injector
	if err != nil {
		return nil, err
	}
	pr.SetFaults(inj)
	return &System{
		Topology:  t,
		Registry:  reg,
		Forwarder: fwd,
		Prober:    pr,
	}, nil
}

// Result accumulates every pipeline output.
type Result struct {
	System *System
	Config Config

	// Hygiene is the dataset hygiene view: the registry the inference
	// stages actually consumed (rebuilt from the serialized datasets), the
	// accepted records with provenance, the quarantine, and the coverage
	// report that lands in the manifest's dataset_hygiene section.
	Hygiene *datasets.View

	// Border is the raw §4 inference (rounds 1 and 2).
	Border *border.Inference
	// Round1CBIs/ABIs snapshot Table 1's pre-expansion rows.
	Round1ABIs, Round1CBIs border.MetaBreakdown
	Round1PeerASes         int

	// Aliases are the MIDAR alias sets (§5.2).
	Aliases []midar.AliasSet
	// Verified is the corrected border view (§5).
	Verified *verify.Result
	// Pinning is the §6 result; PinningCV its §6.2 cross-validation.
	Pinning   *pinning.Result
	PinningCV pinning.CVResult
	// VPI is the §7.1 overlap detection result.
	VPI *VPIResult
	// Groups is the §7.2-7.3 classification.
	Groups *GroupingResult
	// Graph is the §7.4 interface connectivity graph analysis.
	Graph *ICGResult
	// BdrmapRuns and Bdrmap are the §8 baseline and its comparison.
	BdrmapRuns []*bdrmap.RegionResult
	Bdrmap     *bdrmap.Comparison
}

// withDefaults is the one place run-time defaults are applied: every entry
// point (Run, RunOn, RunPipeline) normalises its Config here before use.
func (cfg Config) withDefaults() Config {
	if cfg.CVFolds <= 0 {
		cfg.CVFolds = 10
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// Run executes the full pipeline. The staged form with telemetry,
// checkpointing, and cancellation is RunPipeline; Run keeps the
// one-call-no-options interface.
func Run(cfg Config) (*Result, error) {
	res, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
	return res, err
}

// RunOn executes the pipeline over an existing system (lets callers reuse
// one simulated world across ablation runs).
func RunOn(sys *System, cfg Config) (*Result, error) {
	res, _, err := RunPipeline(context.Background(), sys, cfg, RunOptions{})
	return res, err
}
