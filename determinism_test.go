package cloudmap

import (
	"context"
	"testing"
)

// TestEndToEndDeterminism runs the complete pipeline twice with the same
// seed and requires byte-identical reports: generation, forwarding, probing
// artefacts, alias resolution, verification, pinning (including
// cross-validation folds), VPI detection, grouping, graph analysis, and the
// bdrmap baseline must all be reproducible. This is the repository's
// strongest regression net: any accidental map-iteration or time dependence
// anywhere in the pipeline fails it.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run skipped in -short mode")
	}
	cfg := SmallConfig()
	cfg.Topology.Seed = 777
	cfg.Workers = 1 // explicit: Workers<=0 now defaults to all CPUs

	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Report(), b.Report()
	if ra != rb {
		// Locate the first divergence for the failure message.
		n := len(ra)
		if len(rb) < n {
			n = len(rb)
		}
		at := n
		for i := 0; i < n; i++ {
			if ra[i] != rb[i] {
				at = i
				break
			}
		}
		lo := at - 120
		if lo < 0 {
			lo = 0
		}
		hiA, hiB := at+120, at+120
		if hiA > len(ra) {
			hiA = len(ra)
		}
		if hiB > len(rb) {
			hiB = len(rb)
		}
		t.Fatalf("reports diverge at byte %d:\nrun A: ...%s...\nrun B: ...%s...", at, ra[lo:hiA], rb[lo:hiB])
	}

	// Parallel probing must not change anything either; this run also
	// writes campaign checkpoints for the resume leg below.
	cfg.Workers = 4
	dir := t.TempDir()
	c, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if c.Report() != ra {
		t.Fatal("parallel-worker run diverged from sequential run")
	}

	// A resumed run — probing rounds replayed from the stored tracefiles
	// instead of re-probed — must be byte-identical too.
	d, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	resumed := 0
	for _, st := range rep.Manifest.Stages {
		if st.Status == "resumed" {
			resumed++
		}
	}
	if resumed != 2 {
		t.Fatalf("%d stages resumed from checkpoint, want campaign and expansion", resumed)
	}
	if d.Report() != ra {
		t.Fatal("resumed run diverged from fresh run")
	}
}
