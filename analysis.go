package cloudmap

import (
	"cloudmap/internal/geo"
	"cloudmap/internal/grouping"
	"cloudmap/internal/icg"
	"cloudmap/internal/netblock"
	"cloudmap/internal/registry"
	"cloudmap/internal/vpi"
)

// IP is the IPv4 address type used throughout results (dotted-quad String,
// ParseIP in internal/netblock).
type IP = netblock.IP

// MetroID identifies a metro area of the simulated world.
type MetroID = geo.MetroID

// netblockIP is kept as an internal alias.
type netblockIP = netblock.IP

// VPIResult is the §7.1 multi-cloud overlap detection output (Table 4).
type VPIResult = vpi.Result

// GroupingResult is the §7.2-7.3 classification output (Tables 5, 6;
// Fig. 6; hidden share; BGP coverage).
type GroupingResult = grouping.Result

// ICGResult is the §7.4 interface connectivity graph analysis (Fig. 7).
type ICGResult = icg.Result

// ComboCount is one Table 6 row: a hybrid-peering combination and its AS
// count.
type ComboCount = grouping.ComboCount

// detectVPIs runs §7.1 over the configured foreign clouds. reg is the
// dataset view the run's inference consumes (the hygiene registry under
// RunPipeline).
func detectVPIs(sys *System, reg *registry.Registry, res *Result, clouds []string) *VPIResult {
	out, err := vpi.Detect(sys.Prober, reg, res.Border, clouds)
	if err != nil {
		// Campaign errors here can only be configuration mistakes (unknown
		// cloud names); surface an empty result rather than fail the run.
		return &vpi.Result{
			Pairwise:   map[string]map[IP]struct{}{},
			Cumulative: map[string]int{},
			VPICBIs:    map[IP]struct{}{},
		}
	}
	return out
}

// classifyPeerings runs §7.2-7.3 over the given dataset view.
func classifyPeerings(reg *registry.Registry, res *Result) *GroupingResult {
	return grouping.Classify(res.Verified, res.Border, reg, res.VPI, res.Pinning)
}

// buildICG runs §7.4.
func buildICG(res *Result) *ICGResult {
	return icg.Build(res.Verified, res.Pinning, res.System.Registry.World)
}
