package cloudmap

// Epoch sessions are the incremental form of the pipeline: a Session keeps
// the stage state alive between runs ("epochs") and fingerprints every
// stage's inputs so the runner re-executes only stages whose inputs changed.
// This is what turns the one-shot reproduction into a resident monitor
// (cmd/cloudmapd): topology churn between epochs — re-homed prefixes,
// facility moves, dataset updates — re-runs the dependent inference stages
// and nothing else, and the probing campaigns are replayed from their
// checkpoints instead of re-probed for dataset-only changes.
//
// Determinism contract: epochs are numbered by a counter, never the wall
// clock, and every input hash is a content hash, so the same seed, config,
// and churn sequence produce the same per-epoch stage statuses, hashes, and
// results at any worker count.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cloudmap/internal/datasets"
	"cloudmap/internal/dispatch"
	"cloudmap/internal/metrics"
	"cloudmap/internal/netblock"
	"cloudmap/internal/obs"
	"cloudmap/internal/pipeline"
	"cloudmap/internal/probe"
	"cloudmap/internal/registry"
)

// SessionOptions tunes a Session beyond the pipeline Config.
type SessionOptions struct {
	// CheckpointDir persists the probing rounds between epochs so an epoch
	// whose annotation datasets changed (but whose probing plan did not)
	// replays the stored traces instead of re-probing. Empty disables
	// replay: such epochs re-probe (same traces, more work).
	CheckpointDir string
	// Metrics receives every stage's instruments across all epochs; nil
	// creates a private registry. Counters accumulate over the session's
	// lifetime (Prometheus semantics for the live /metrics endpoint).
	Metrics *metrics.Registry
	// Progress, when non-nil, receives live stage/trace updates.
	Progress *obs.Progress
	// Dispatch, when non-nil, leases the probing campaigns' chunks to the
	// configured remote agents; one controller (heartbeats, hedging state)
	// persists across the session's epochs. Close releases it.
	Dispatch *dispatch.Options
}

// EpochReport records one epoch's scheduling outcome: which stages ran,
// which were hash-skipped, and the per-stage input hashes. It contains no
// wall-clock material, so a journal built from it replays byte-identically.
type EpochReport struct {
	Epoch  uint64                 `json:"epoch"`
	Stages []pipeline.StageResult `json:"stages"`
	// Summary carries the run's headline quantities after this epoch.
	Summary map[string]float64 `json:"summary,omitempty"`
}

// StagesRun returns the names of stages that actually executed this epoch
// (ran or replayed a checkpoint — everything except skips).
func (r *EpochReport) StagesRun() []string {
	var out []string
	for _, sr := range r.Stages {
		if sr.Status == pipeline.StatusOK || sr.Status == pipeline.StatusResumed {
			out = append(out, sr.Name)
		}
	}
	return out
}

// StagesSkipped returns the names of hash-skipped stages.
func (r *EpochReport) StagesSkipped() []string {
	var out []string
	for _, sr := range r.Stages {
		if sr.Status == pipeline.StatusSkippedUnchanged {
			out = append(out, sr.Name)
		}
	}
	return out
}

// Session drives the pipeline epoch by epoch over one simulated world,
// retaining stage outputs in memory between epochs. Not safe for concurrent
// use; callers serialize RunEpoch/SetRegistry (cloudmapd's epoch loop does).
type Session struct {
	cfg   Config
	opts  SessionOptions
	sys   *System
	st    *pipeState
	reg   *metrics.Registry
	prev  map[string]string // stage -> input hash of its last clean run
	epoch uint64
}

// NewSession generates the world for cfg and prepares the epoch state.
func NewSession(cfg Config, opts SessionOptions) (*Session, error) {
	cfg = cfg.withDefaults()
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("cloudmap: checkpoint dir: %w", err)
		}
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	st := &pipeState{
		cfg:          cfg,
		opts:         RunOptions{CheckpointDir: opts.CheckpointDir, Progress: opts.Progress},
		sys:          sys,
		prog:         opts.Progress,
		epochMode:    true,
		stageHash:    make(map[string]string),
		probePlanNow: make(map[string]string),
		probeGate:    make(map[string]string),
	}
	if opts.Dispatch != nil {
		st.disp = dispatch.NewController(*opts.Dispatch, dispatch.Fingerprint(cfg.Topology, cfg.Faults))
	}
	return &Session{cfg: cfg, opts: opts, sys: sys, st: st, reg: reg, prev: make(map[string]string)}, nil
}

// Close releases session resources: the dispatch controller's heartbeat
// loop, when distributed probing is configured. Safe on a nil-dispatch
// session and safe to call repeatedly.
func (s *Session) Close() {
	if s.st.disp != nil {
		s.st.disp.Close()
	}
}

// Dispatch exposes the session's dispatch controller; nil when probing runs
// in-process. The daemon reads its Stats for the status surface.
func (s *Session) Dispatch() *dispatch.Controller { return s.st.disp }

// System exposes the session's simulated world.
func (s *Session) System() *System { return s.sys }

// Epoch returns the number of the last completed (or attempted) epoch;
// zero before the first RunEpoch.
func (s *Session) Epoch() uint64 { return s.epoch }

// SetEpoch overrides the epoch counter, so the next RunEpoch runs as epoch
// n+1. Two callers: a rehydrated daemon resuming numbering where its
// journal left off, and the epoch supervisor rewinding before retrying a
// failed epoch (a retry must not consume a fresh epoch number).
func (s *Session) SetEpoch(n uint64) { s.epoch = n }

// SetRegistry replaces the world's public-dataset registry before the next
// epoch — the churn hook: cloudmapd derives each epoch's registry from the
// previous one (re-homed prefixes, facility moves) and installs it here.
// The next epoch's dataset hashes pick the changes up and re-run exactly
// the dependent stages.
func (s *Session) SetRegistry(reg *registry.Registry) { s.sys.Registry = reg }

// RunEpoch executes one epoch: every stage whose input hash changed since
// its last clean run re-runs; the rest hash-skip. The returned Result is
// the live view after the epoch (shared with the session — callers must
// extract what they keep). The report is returned even on failure.
func (s *Session) RunEpoch(ctx context.Context) (*Result, *EpochReport, error) {
	s.epoch++
	stages, err := newRunner(s.reg).Run(ctx, s.st, pipeline.Options{
		Resume:     true,
		Progress:   s.opts.Progress,
		PrevHashes: s.prev,
	})
	rep := &EpochReport{Epoch: s.epoch, Stages: stages, Summary: s.st.summary}
	for _, sr := range stages {
		clean := !sr.Degraded && sr.InputHash != ""
		switch sr.Status {
		case pipeline.StatusOK, pipeline.StatusResumed, pipeline.StatusSkippedUnchanged:
			if clean {
				s.prev[sr.Name] = sr.InputHash
			} else {
				// Degraded outputs are kept but never hash-skipped over:
				// the stage re-runs next epoch and may recover.
				delete(s.prev, sr.Name)
			}
		default:
			delete(s.prev, sr.Name)
		}
	}
	if err != nil {
		return nil, rep, err
	}
	return s.st.res, rep, nil
}

// --- stage input hashing -------------------------------------------------

// shortHash is the session's content-hash primitive: SHA-256 over the parts
// separated by an unambiguous delimiter, truncated like configHash.
func shortHash(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s|", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// canonJSON marshals v canonically (struct field order; sorted map keys —
// encoding/json sorts map keys by default).
func canonJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cloudmap: input hash marshal: %v", err)) // plain-data configs; unreachable
	}
	return string(b)
}

// hashIPs fingerprints a target list order-independently.
func hashIPs(ips []netblock.IP) string {
	sorted := append([]netblock.IP(nil), ips...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	var buf [4]byte
	for _, ip := range sorted {
		buf[0], buf[1], buf[2], buf[3] = byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// put records a stage's input hash for downstream stages and returns it.
func (s *pipeState) put(stage, h string) string {
	s.stageHash[stage] = h
	return h
}

// annotationHash fingerprints the datasets that decide per-hop annotations
// (and therefore the border walk): RIB, WHOIS, IXPs, as2org, clouds.
func (s *pipeState) annotationHash() string {
	return shortHash("ann",
		s.dsHash[datasets.DSRib], s.dsHash[datasets.DSWhois], s.dsHash[datasets.DSIXPs],
		s.dsHash[datasets.DSAs2org], s.dsHash[datasets.DSClouds])
}

// probePlanHash fingerprints everything that decides what a probing round
// sends and how the fault layer answers: the topology, the fault plan, the
// retry policy, and the round's target derivation inputs.
func (s *pipeState) probePlanHash(extra ...string) string {
	parts := append([]string{
		s.stageHash["topo-gen"],
		canonJSON(s.cfg.Faults),
		canonJSON(s.cfg.Retry),
	}, extra...)
	return shortHash(parts...)
}

func (s *pipeState) topoGenHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("topo-gen", shortHash("topo-gen", canonJSON(s.cfg.Topology)))
}

// datasetsInputHash serializes the (possibly churned) registry and hashes
// each dataset file; the serialization is cached for the stage's Run.
func (s *pipeState) datasetsInputHash() string {
	if !s.epochMode {
		return ""
	}
	corpus := datasets.Serialize(s.sys.Registry, s.cfg.Topology.Seed, s.cfg.Dirty)
	s.corpus = corpus
	s.dsHash = make(map[string]string, len(datasets.Datasets))
	parts := []string{"datasets", s.stageHash["topo-gen"], canonJSON(s.cfg.Dirty)}
	for _, ds := range datasets.Datasets {
		fh := shortHash(string(corpus.Files[datasets.FileOf(ds)]))
		s.dsHash[ds] = fh
		parts = append(parts, ds, fh)
	}
	return s.put("datasets", shortHash(parts...))
}

func (s *pipeState) campaignHash() string {
	if !s.epochMode {
		return ""
	}
	s.probePlanNow["campaign"] = s.probePlanHash("round1", fmt.Sprint(s.cfg.IncludePrivateTargets))
	return s.put("campaign", shortHash("campaign", s.probePlanNow["campaign"], s.annotationHash()))
}

func (s *pipeState) borderHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("border", shortHash("border", s.stageHash["campaign"]))
}

func (s *pipeState) expansionHash() string {
	if !s.epochMode {
		return ""
	}
	// The expansion target set derives from round-1 inference; its hash
	// gates checkpoint replay separately from the stage hash (a changed
	// candidate set must re-probe even though the fault plan is unchanged).
	targets := probe.ExpansionTargets(s.inf.CandidateCBIs())
	s.probePlanNow["expansion"] = s.probePlanHash("round2", hashIPs(targets))
	return s.put("expansion", shortHash("expansion", s.stageHash["campaign"]))
}

func (s *pipeState) aliasHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("alias", shortHash("alias", s.stageHash["expansion"], canonJSON(s.cfg.Midar)))
}

func (s *pipeState) verifyHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("verify", shortHash("verify", s.stageHash["alias"], canonJSON(s.cfg.Verify)))
}

func (s *pipeState) pinningHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("pinning", shortHash("pinning",
		s.stageHash["verify"],
		s.dsHash[datasets.DSFacilities], s.dsHash[datasets.DSRDNS],
		canonJSON(s.cfg.Pinning), fmt.Sprint(s.cfg.CVFolds)))
}

func (s *pipeState) vpiHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("vpi", shortHash("vpi",
		s.stageHash["expansion"], canonJSON(s.cfg.VPIClouds), s.dsHash[datasets.DSClouds]))
}

func (s *pipeState) classifyHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("classify", shortHash("classify",
		s.stageHash["verify"], s.stageHash["pinning"], s.stageHash["vpi"],
		s.dsHash[datasets.DSASRel], s.dsHash[datasets.DSCones], s.dsHash[datasets.DSRDNS]))
}

func (s *pipeState) icgHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("icg", shortHash("icg", s.stageHash["verify"], s.stageHash["pinning"]))
}

func (s *pipeState) bdrmapHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("bdrmap", shortHash("bdrmap", s.stageHash["verify"], canonJSON(s.cfg.Bdrmap)))
}

func (s *pipeState) invariantsHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("invariants", shortHash("invariants", s.stageHash["classify"], s.stageHash["icg"]))
}

func (s *pipeState) evaluateHash() string {
	if !s.epochMode {
		return ""
	}
	return s.put("evaluate", shortHash("evaluate", s.stageHash["invariants"], s.stageHash["bdrmap"]))
}
