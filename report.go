package cloudmap

import (
	"fmt"
	"strings"

	"cloudmap/internal/report"
)

// WriteFigureData dumps the raw series behind every figure (4a, 4b, 5, 6,
// 7a, 7b) as CSV files into dir, ready for gnuplot/matplotlib.
func (r *Result) WriteFigureData(dir string) error {
	return report.WriteCSV(dir, r.Pinning, r.Groups, r.Graph)
}

// Report renders the full evaluation — every table and figure of the paper —
// as text.
func (r *Result) Report() string {
	var b strings.Builder

	b.WriteString("=== cloudmap: Amazon peering fabric reproduction ===\n\n")
	s := r.Border.Stats
	fmt.Fprintf(&b, "campaign: %d traceroutes; %.1f%% completed; %.1f%% left Amazon; excluded: %d loops, %d gaps, %d dst-CBI, %d dups\n",
		s.Traces, 100*float64(s.Completed)/float64(maxInt(s.Traces, 1)),
		100*float64(s.LeftCloud)/float64(maxInt(s.Traces, 1)),
		s.ExcludedLoop, s.ExcludedGap, s.ExcludedDst, s.ExcludedDup)
	fmt.Fprintf(&b, "peer ASes: %d after round 1, %d final\n\n",
		r.Round1PeerASes, len(r.Border.PeerASNs()))

	b.WriteString(report.Table1(r.Round1ABIs, r.Round1CBIs, r.Border.BreakdownABIs(), r.Border.BreakdownCBIs()))
	b.WriteString("\n")
	b.WriteString(report.Table2(r.Verified, len(r.Border.CandidateABIs())))
	b.WriteString("\n")
	b.WriteString(report.Table3(r.Pinning))
	b.WriteString(report.PinningEval(r.PinningCV, r.Pinning, len(r.System.Registry.AmazonListedCities)))
	b.WriteString("\n")
	b.WriteString(report.Fig4(r.Pinning))
	b.WriteString("\n")
	b.WriteString(report.Fig5(r.Pinning))
	b.WriteString("\n")
	b.WriteString(report.Table4(r.VPI))
	b.WriteString("\n")
	b.WriteString(report.Table5(r.Groups))
	b.WriteString("\n")
	b.WriteString(report.Table6(r.Groups))
	fmt.Fprintf(&b, "\nBGP coverage: %d reported, %d found + %d via siblings (%.1f%%); %d peerings beyond BGP\n",
		r.Groups.BGPReported, r.Groups.BGPFound, r.Groups.BGPSiblings, r.Groups.CoveragePct, r.Groups.BeyondBGP)
	fmt.Fprintf(&b, "Direct-Connect DNS evidence on Pr-nB CBIs: %d dx-keyword names, %d VLAN tags\n\n",
		r.Groups.DXNames, r.Groups.VLANNames)
	b.WriteString(report.Fig6(r.Groups))
	b.WriteString("\n")
	b.WriteString(report.Fig7(r.Graph))
	if r.Bdrmap != nil {
		b.WriteString("\n")
		b.WriteString(report.Bdrmap(r.Bdrmap))
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
