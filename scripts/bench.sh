#!/bin/sh
# bench.sh — run the pipeline benchmarks and digest the output into
# BENCH_pipeline.json, a machine-readable record of one benchmark run:
#
#   {"benchmarks": [{"name": "BenchmarkPipelineRun", "iterations": 1,
#                    "metrics": {"ns/op": ..., "campaign-ms": ..., ...}}]}
#
# Usage: scripts/bench.sh [out.json]   (default BENCH_pipeline.json)
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_pipeline.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "==> go test -bench BenchmarkPipeline -benchtime 1x ."
go test -run '^$' -bench 'BenchmarkPipeline' -benchtime 1x . | tee "$RAW"

echo "==> go test -bench BenchmarkTracefile ./internal/tracefile"
go test -run '^$' -bench 'BenchmarkTracefile' ./internal/tracefile | tee -a "$RAW"

# Benchmark lines look like:
#   BenchmarkPipelineRun-8  1  123456789 ns/op  456.7 campaign-ms  ...
# i.e. name, iteration count, then (value, unit) pairs.
awk '
BEGIN { print "{\n  \"benchmarks\": [" ; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2
	m = 0
	for (i = 3; i + 1 <= NF; i += 2) {
		if (m++) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
	}
	printf "}}"
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "==> benchmark record written to $OUT"
