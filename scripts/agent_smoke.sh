#!/bin/sh
# agent_smoke.sh — end-to-end distributed-probing smoke for cloudmapd.
#
# Runs one epoch local-only as the baseline, then the same epoch against a
# real three-agent fleet where one cloudmapagent is SIGKILLed mid-chunk (a
# chaos stall plan holds its lease open so the kill is guaranteed to land
# while a chunk is in flight), and verifies the dispatch contract from the
# outside:
#
#   - the served map (/v1/peerings) is byte-identical to the local-only
#     run — re-leasing, agent loss, and local fallback change who does the
#     work, never the bytes,
#   - the daemon log shows the failure handling (a lost agent and at least
#     one re-dispatched chunk),
#   - /metrics reports leases actually granted to the fleet, plus per-agent
#     service_agent_<id>_* series, and each agent's own /metrics shows the
#     work it executed,
#   - /v1/fleet reports the kill schedule: two healthy agents, one lost,
#   - a cloudmap CLI run dispatched to the surviving agents journals the
#     exact same events (sorted) as a local run — trace contexts propagate
#     across the lease protocol without changing a byte.
#
# Usage: scripts/agent_smoke.sh [work-dir]
# The work dir (default: a fresh mktemp -d) keeps the daemon and agent logs,
# both peering captures, the fleet document, and both journals for
# post-mortem; CI uploads it as an artifact.
set -eu

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK"

go build -o "$WORK/" ./cmd/cloudmapd ./cmd/cloudmapctl ./cmd/cloudmapagent ./cmd/cloudmap

status_epoch() {
	"$WORK/cloudmapctl" -addr "$(cat "$WORK/$1")" -json status 2>/dev/null |
		sed -n 's/.*"epoch": \([0-9]*\).*/\1/p' | head -1
}

wait_epoch1() { # $1 = addr file, $2 = pid, $3 = log
	for _ in $(seq 1 600); do
		if [ -s "$WORK/$1" ] && [ "$(status_epoch "$1" || echo 0)" -ge 1 ] 2>/dev/null; then
			return 0
		fi
		if ! kill -0 "$2" 2>/dev/null; then
			echo "cloudmapd died before epoch 1:" >&2
			cat "$WORK/$3" >&2
			exit 1
		fi
		sleep 0.5
	done
	echo "never reached epoch 1 (see $WORK/$3)" >&2
	exit 1
}

# --- Phase 1: local-only baseline. ---------------------------------------
"$WORK/cloudmapd" -scale small -seed 1 -epochs 0 -epoch-every 1h \
	-addr 127.0.0.1:0 -addr-file "$WORK/addr-local.txt" \
	>"$WORK/cloudmapd-local.log" 2>&1 &
LOCAL_PID=$!
wait_epoch1 addr-local.txt "$LOCAL_PID" cloudmapd-local.log
curl -fsS "http://$(cat "$WORK/addr-local.txt")/v1/peerings" >"$WORK/peerings-local.json"
kill -TERM "$LOCAL_PID"
wait "$LOCAL_PID" || { echo "local-only cloudmapd exited dirty" >&2; exit 1; }
echo "local baseline captured ($(wc -c <"$WORK/peerings-local.json") bytes)"

# --- Phase 2: a three-agent fleet, one victim. ---------------------------
# The victim stalls every chunk for 60s — far past the 2s lease deadline —
# so it is always holding a lease mid-chunk; the SIGKILL below lands while
# a chunk is in flight on it.
cat >"$WORK/stall.json" <<'EOF'
{"seed": 1, "window_chunks": 1, "stall": {"prob": 1, "sec": 60}}
EOF
for a in 1 2 3; do
	PLAN_ARGS=""
	[ "$a" = 1 ] && PLAN_ARGS="-agent-plan $WORK/stall.json"
	# shellcheck disable=SC2086
	"$WORK/cloudmapagent" -scale small -seed 1 -agent-id "agent$a" \
		-addr 127.0.0.1:0 -addr-file "$WORK/agent$a.txt" $PLAN_ARGS \
		>"$WORK/agent$a.log" 2>&1 &
	eval "AGENT${a}_PID=\$!"
done
for a in 1 2 3; do
	for _ in $(seq 1 120); do
		[ -s "$WORK/agent$a.txt" ] && break
		sleep 0.5
	done
	[ -s "$WORK/agent$a.txt" ] || { echo "agent$a never bound" >&2; cat "$WORK/agent$a.log" >&2; exit 1; }
done
AGENTS="http://$(cat "$WORK/agent1.txt"),http://$(cat "$WORK/agent2.txt"),http://$(cat "$WORK/agent3.txt")"

"$WORK/cloudmapd" -scale small -seed 1 -epochs 0 -epoch-every 1h \
	-addr 127.0.0.1:0 -addr-file "$WORK/addr-dist.txt" \
	-agents "$AGENTS" -lease-timeout 2s \
	>"$WORK/cloudmapd-dist.log" 2>&1 &
DIST_PID=$!

# SIGKILL the victim as soon as its log shows a lease stalled mid-chunk.
KILLED=0
for _ in $(seq 1 600); do
	if grep -q 'chaos stall' "$WORK/agent1.log" 2>/dev/null; then
		kill -9 "$AGENT1_PID"
		wait "$AGENT1_PID" 2>/dev/null || true
		KILLED=1
		echo "SIGKILLed agent1 mid-chunk"
		break
	fi
	if ! kill -0 "$DIST_PID" 2>/dev/null; then
		echo "cloudmapd died before agent1 held a lease:" >&2
		cat "$WORK/cloudmapd-dist.log" >&2
		exit 1
	fi
	sleep 0.2
done
[ "$KILLED" = 1 ] || { echo "agent1 never received a lease" >&2; cat "$WORK/cloudmapd-dist.log" >&2; exit 1; }

wait_epoch1 addr-dist.txt "$DIST_PID" cloudmapd-dist.log
DIST_ADDR="$(cat "$WORK/addr-dist.txt")"
curl -fsS "http://$DIST_ADDR/v1/peerings" >"$WORK/peerings-dist.json"

# The distributed map must match the local-only run byte for byte.
cmp "$WORK/peerings-local.json" "$WORK/peerings-dist.json" || {
	echo "/v1/peerings diverged between local-only and distributed runs" >&2
	exit 1
}

# The failure handling must have actually fired and been observable in the
# structured log.
grep -q '"msg":"agent lost"' "$WORK/cloudmapd-dist.log" || {
	echo "daemon log never marked the killed agent lost:" >&2
	cat "$WORK/cloudmapd-dist.log" >&2
	exit 1
}
grep -q 'redispatching' "$WORK/cloudmapd-dist.log" || {
	echo "daemon log shows no re-dispatched chunk:" >&2
	cat "$WORK/cloudmapd-dist.log" >&2
	exit 1
}
GRANTED="$(curl -fsS "http://$DIST_ADDR/metrics" | sed -n 's/^service_leases_granted \([0-9]*\).*/\1/p')"
[ "${GRANTED:-0}" -gt 0 ] || {
	echo "/metrics reports no leases granted (service_leases_granted=$GRANTED)" >&2
	exit 1
}

# /v1/fleet must reflect the kill schedule: the two survivors healthy, the
# SIGKILLed victim lost. The loss takes a couple of missed heartbeats to
# register, so poll briefly.
FLEET_OK=0
for _ in $(seq 1 60); do
	curl -fsS "http://$DIST_ADDR/v1/fleet" >"$WORK/fleet.json"
	HEALTHY="$(grep -c '"state": "healthy"' "$WORK/fleet.json" || true)"
	LOST="$(grep -c '"state": "lost"' "$WORK/fleet.json" || true)"
	if [ "$HEALTHY" = 2 ] && [ "$LOST" = 1 ]; then
		FLEET_OK=1
		break
	fi
	sleep 0.5
done
[ "$FLEET_OK" = 1 ] || {
	echo "/v1/fleet never settled to 2 healthy + 1 lost:" >&2
	cat "$WORK/fleet.json" >&2
	exit 1
}
"$WORK/cloudmapctl" -addr "$DIST_ADDR" fleet >"$WORK/fleet.txt"
grep -q 'agent2' "$WORK/fleet.txt" || {
	echo "cloudmapctl fleet does not list agent2:" >&2
	cat "$WORK/fleet.txt" >&2
	exit 1
}

# Per-agent telemetry: the daemon exports service_agent_<id>_* series for
# the fleet, and the surviving agents' own admin planes account the leases
# they executed.
curl -fsS "http://$DIST_ADDR/metrics" | grep -q '^service_agent_agent[0-9]*_up' || {
	echo "daemon /metrics has no per-agent service_agent_* series" >&2
	exit 1
}
AGENT_LEASES=0
for a in 2 3; do
	N="$(curl -fsS "http://$(cat "$WORK/agent$a.txt")/metrics" | sed -n 's/^agent_leases_done \([0-9]*\).*/\1/p')"
	AGENT_LEASES=$((AGENT_LEASES + ${N:-0}))
done
[ "$AGENT_LEASES" -gt 0 ] || {
	echo "surviving agents report no leases executed on their own /metrics" >&2
	exit 1
}

# Clean shutdown of the daemon; the surviving agents stay up for the
# journal phase below.
kill -TERM "$DIST_PID"
wait "$DIST_PID" || { echo "distributed cloudmapd exited dirty" >&2; cat "$WORK/cloudmapd-dist.log" >&2; exit 1; }

# --- Phase 3: trace-context propagation. ---------------------------------
# The CLI pipeline's event journal, sorted, must be byte-identical whether
# chunks run locally or are leased to the surviving agents: span IDs derive
# from the propagated trace context, and lease lifecycle noise never reaches
# the journal.
"$WORK/cloudmap" -scale small -seed 1 -journal-out "$WORK/journal-local.jsonl" \
	>"$WORK/cloudmap-local.log" 2>&1 || { echo "local cloudmap run failed" >&2; cat "$WORK/cloudmap-local.log" >&2; exit 1; }
"$WORK/cloudmap" -scale small -seed 1 -journal-out "$WORK/journal-dist.jsonl" \
	-agents "http://$(cat "$WORK/agent2.txt"),http://$(cat "$WORK/agent3.txt")" \
	>"$WORK/cloudmap-dist.log" 2>&1 || { echo "dispatched cloudmap run failed" >&2; cat "$WORK/cloudmap-dist.log" >&2; exit 1; }
LC_ALL=C sort "$WORK/journal-local.jsonl" >"$WORK/journal-local.sorted"
LC_ALL=C sort "$WORK/journal-dist.jsonl" >"$WORK/journal-dist.sorted"
cmp "$WORK/journal-local.sorted" "$WORK/journal-dist.sorted" || {
	echo "sorted journals diverged between local and dispatched runs" >&2
	exit 1
}
echo "journals byte-identical across the lease protocol ($(wc -l <"$WORK/journal-local.sorted") events)"

kill -TERM "$AGENT2_PID" "$AGENT3_PID" 2>/dev/null || true
wait "$AGENT2_PID" "$AGENT3_PID" 2>/dev/null || true

echo "agent smoke passed: map byte-identical under agent loss ($GRANTED leases granted, fleet 2 healthy + 1 lost)"
