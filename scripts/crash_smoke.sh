#!/bin/sh
# crash_smoke.sh — end-to-end crash-recovery smoke for cloudmapd.
#
# Runs the daemon with a state dir, SIGKILLs it mid-epoch (no drain, no
# flush beyond what fsync already made durable), restarts it on the same
# state dir, and verifies the recovery contract from the outside:
#
#   - the restart logs that it recovered and resumes epoch numbering
#     (the journal stays gapless: epochs 1..N with no repeats or holes),
#   - the served map (/v1/peerings) matches the last journal record's
#     row count,
#   - a SIGTERM afterwards still exits cleanly.
#
# Usage: scripts/crash_smoke.sh [work-dir]
# The work dir (default: a fresh mktemp -d) keeps the state dir and both
# daemon logs for post-mortem; CI uploads it as an artifact.
set -eu

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
STATE="$WORK/state"
mkdir -p "$STATE"

go build -o "$WORK/" ./cmd/cloudmapd ./cmd/cloudmapctl

status_epoch() {
	"$WORK/cloudmapctl" -addr "$(cat "$WORK/$1")" -json status 2>/dev/null |
		sed -n 's/.*"epoch": \([0-9]*\).*/\1/p' | head -1
}

# --- Phase 1: run epochs back-to-back, then kill -9 mid-flight. ----------
"$WORK/cloudmapd" -scale small -seed 1 -epochs 0 -epoch-every 0s \
	-addr 127.0.0.1:0 -addr-file "$WORK/addr1.txt" \
	-state-dir "$STATE" -checkpoint-every 2 \
	>"$WORK/cloudmapd-crash.log" 2>&1 &
PID=$!
PRE_EPOCH=0
for _ in $(seq 1 600); do
	if [ -s "$WORK/addr1.txt" ]; then
		PRE_EPOCH="$(status_epoch addr1.txt || true)"
		[ "${PRE_EPOCH:-0}" -ge 2 ] 2>/dev/null && break
	fi
	if ! kill -0 "$PID" 2>/dev/null; then
		echo "cloudmapd died before epoch 2:" >&2
		cat "$WORK/cloudmapd-crash.log" >&2
		exit 1
	fi
	sleep 0.5
done
[ "${PRE_EPOCH:-0}" -ge 2 ] || { echo "never reached epoch 2" >&2; exit 1; }
# With -epoch-every 0s the next epoch is already in flight: this SIGKILL
# lands mid-epoch, possibly mid-journal-write.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "killed cloudmapd at published epoch $PRE_EPOCH"

# --- Phase 2: restart on the same state dir. -----------------------------
"$WORK/cloudmapd" -scale small -seed 1 -epochs 0 -epoch-every 1h \
	-addr 127.0.0.1:0 -addr-file "$WORK/addr2.txt" \
	-state-dir "$STATE" -checkpoint-every 2 \
	>"$WORK/cloudmapd-recover.log" 2>&1 &
PID=$!
POST_EPOCH=0
for _ in $(seq 1 600); do
	if [ -s "$WORK/addr2.txt" ]; then
		POST_EPOCH="$(status_epoch addr2.txt || true)"
		[ "${POST_EPOCH:-0}" -gt "$PRE_EPOCH" ] 2>/dev/null && break
	fi
	if ! kill -0 "$PID" 2>/dev/null; then
		echo "cloudmapd died during recovery:" >&2
		cat "$WORK/cloudmapd-recover.log" >&2
		exit 1
	fi
	sleep 0.5
done
[ "${POST_EPOCH:-0}" -gt "$PRE_EPOCH" ] || {
	echo "epoch numbering did not continue past $PRE_EPOCH:" >&2
	cat "$WORK/cloudmapd-recover.log" >&2
	exit 1
}
grep -q 'cloudmapd recovered' "$WORK/cloudmapd-recover.log" || {
	echo "restart did not report recovery:" >&2
	cat "$WORK/cloudmapd-recover.log" >&2
	exit 1
}
echo "recovered and continued: epoch $PRE_EPOCH -> $POST_EPOCH"

# The served map must match the journal's last record.
ADDR="$(cat "$WORK/addr2.txt")"
SERVED_ROWS="$(curl -fsS "http://$ADDR/v1/peerings" | grep -o '"cbi"' | wc -l | tr -d ' ')"
JOURNAL_ROWS="$(grep -o '"peerings":[0-9]*' "$STATE/epochs.wal" | tail -1 | cut -d: -f2)"
[ "$SERVED_ROWS" = "$JOURNAL_ROWS" ] || {
	echo "/v1/peerings serves $SERVED_ROWS rows, journal records $JOURNAL_ROWS" >&2
	exit 1
}

# Clean shutdown still works after a recovery.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
[ "$RC" -eq 0 ] || {
	echo "cloudmapd exited $RC after SIGTERM" >&2
	cat "$WORK/cloudmapd-recover.log" >&2
	exit 1
}

# The journal must be gapless: non-failure records count 1..N exactly once.
awk '
	/"kind":"epoch-failed"/ { next }
	match($0, /"epoch":[0-9]+/) {
		e = substr($0, RSTART + 8, RLENGTH - 8) + 0
		if (e != ++want) { printf "journal gap: record %d has epoch %d\n", want, e; exit 1 }
	}
' "$STATE/epochs.wal"

echo "crash smoke passed: journal gapless through epoch $POST_EPOCH, map matches journal ($SERVED_ROWS rows)"
