#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# short fuzz smoke over the parsers that consume untrusted input.
# Usage: scripts/check.sh [fuzz-seconds]   (default 10)
set -eu

cd "$(dirname "$0")/.."
FUZZ_SECONDS="${1:-10}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
# -short keeps the race pass inside the default per-package timeout: the
# multi-run determinism/resume tests are covered without -race by
# 'make test'; the race-relevant concurrency (parallel campaigns, metrics
# hot path, cancellation) all runs in short mode.
go test -race -short -timeout 20m ./...

echo "==> chaos smoke (fault injection + same-seed replay)"
go test -run 'TestChaos' -timeout 10m .

echo "==> hygiene smoke (dirty datasets + quarantine accounting)"
go test -run 'TestHygiene|TestDegradationReportDatasetOnly|TestConfigHashDirtyPlan' -timeout 10m .

echo "==> daemon smoke (cloudmapd one epoch + cloudmapctl + graceful SIGTERM)"
SMOKE_DIR="${CLOUDMAPD_SMOKE_DIR:-$(mktemp -d)}"
go build -o "$SMOKE_DIR/" ./cmd/cloudmapd ./cmd/cloudmapctl
"$SMOKE_DIR/cloudmapd" -scale small -seed 1 -epochs 0 -epoch-every 1h \
	-addr 127.0.0.1:0 -addr-file "$SMOKE_DIR/addr.txt" \
	-checkpoint-dir "$SMOKE_DIR/ckpt" -epoch-journal "$SMOKE_DIR/epochs.jsonl" \
	>"$SMOKE_DIR/cloudmapd.log" 2>&1 &
CLOUDMAPD_PID=$!
# Wait for the first epoch to publish (the status document reports it).
for _ in $(seq 1 600); do
	if [ -s "$SMOKE_DIR/addr.txt" ] &&
		"$SMOKE_DIR/cloudmapctl" -addr "$(cat "$SMOKE_DIR/addr.txt")" -json status 2>/dev/null |
		grep -q '"epoch": 1'; then
		break
	fi
	if ! kill -0 "$CLOUDMAPD_PID" 2>/dev/null; then
		echo "cloudmapd died during smoke:" >&2
		cat "$SMOKE_DIR/cloudmapd.log" >&2
		exit 1
	fi
	sleep 0.5
done
ADDR="$(cat "$SMOKE_DIR/addr.txt")"
"$SMOKE_DIR/cloudmapctl" -addr "$ADDR" status
"$SMOKE_DIR/cloudmapctl" -addr "$ADDR" peerings | head -5
curl -fsS "http://$ADDR/v1/peerings" 2>/dev/null | grep -q '"cbi"'
curl -fsS "http://$ADDR/metrics" >/dev/null
# Graceful shutdown: SIGTERM drains, the journal is flushed, exit is clean.
kill -TERM "$CLOUDMAPD_PID"
SMOKE_RC=0
wait "$CLOUDMAPD_PID" || SMOKE_RC=$?
[ "$SMOKE_RC" -eq 0 ] || {
	echo "cloudmapd exited $SMOKE_RC after SIGTERM" >&2
	cat "$SMOKE_DIR/cloudmapd.log" >&2
	exit 1
}
grep -q '"epoch":1' "$SMOKE_DIR/epochs.jsonl"

echo "==> crash-recovery smoke (kill -9 mid-epoch + restart on the same state dir)"
sh scripts/crash_smoke.sh "${CLOUDMAPD_CRASH_DIR:-$(mktemp -d)}"

echo "==> distributed-probing smoke (3-agent fleet, kill -9 one agent mid-chunk)"
sh scripts/agent_smoke.sh "${CLOUDMAPD_AGENT_DIR:-$(mktemp -d)}"

echo "==> tracefile format round-trip smoke (binary <-> text byte-identity)"
RT_DIR="$(mktemp -d)"
go build -o "$RT_DIR/" ./cmd/cloudmap ./cmd/tracedump
"$RT_DIR/cloudmap" -scale small -traces "$RT_DIR/camp.traces.bin" >/dev/null
"$RT_DIR/tracedump" -stat "$RT_DIR/camp.traces.bin" | grep -q 'binary, complete'
"$RT_DIR/tracedump" -convert "$RT_DIR/camp.traces.bin" -to text -o "$RT_DIR/camp.traces.gz"
"$RT_DIR/tracedump" -convert "$RT_DIR/camp.traces.gz" -to binary -o "$RT_DIR/camp2.traces.bin"
cmp "$RT_DIR/camp.traces.bin" "$RT_DIR/camp2.traces.bin"
"$RT_DIR/tracedump" -convert "$RT_DIR/camp2.traces.bin" -to text -o "$RT_DIR/camp2.traces.gz"
cmp "$RT_DIR/camp.traces.gz" "$RT_DIR/camp2.traces.gz"
rm -rf "$RT_DIR"

echo "==> fuzz smoke (${FUZZ_SECONDS}s per target)"
go test -run '^$' -fuzz '^FuzzRead$' -fuzztime "${FUZZ_SECONDS}s" ./internal/tracefile
go test -run '^$' -fuzz '^FuzzReadBinary$' -fuzztime "${FUZZ_SECONDS}s" ./internal/tracefile
go test -run '^$' -fuzz '^FuzzParseIP$' -fuzztime "${FUZZ_SECONDS}s" ./internal/netblock
go test -run '^$' -fuzz '^FuzzParsePrefix$' -fuzztime "${FUZZ_SECONDS}s" ./internal/netblock
for target in FuzzRIB FuzzWhois FuzzIXPs FuzzFacilities FuzzAs2org FuzzASRel FuzzCones FuzzRDNS; do
	go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZ_SECONDS}s" ./internal/datasets
done

echo "==> all checks passed"
