#!/bin/sh
# check.sh — the full local gate: vet, build, race-enabled tests, and a
# short fuzz smoke over the parsers that consume untrusted input.
# Usage: scripts/check.sh [fuzz-seconds]   (default 10)
set -eu

cd "$(dirname "$0")/.."
FUZZ_SECONDS="${1:-10}"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
# -short keeps the race pass inside the default per-package timeout: the
# multi-run determinism/resume tests are covered without -race by
# 'make test'; the race-relevant concurrency (parallel campaigns, metrics
# hot path, cancellation) all runs in short mode.
go test -race -short -timeout 20m ./...

echo "==> chaos smoke (fault injection + same-seed replay)"
go test -run 'TestChaos' -timeout 10m .

echo "==> hygiene smoke (dirty datasets + quarantine accounting)"
go test -run 'TestHygiene|TestDegradationReportDatasetOnly|TestConfigHashDirtyPlan' -timeout 10m .

echo "==> fuzz smoke (${FUZZ_SECONDS}s per target)"
go test -run '^$' -fuzz '^FuzzRead$' -fuzztime "${FUZZ_SECONDS}s" ./internal/tracefile
go test -run '^$' -fuzz '^FuzzParseIP$' -fuzztime "${FUZZ_SECONDS}s" ./internal/netblock
go test -run '^$' -fuzz '^FuzzParsePrefix$' -fuzztime "${FUZZ_SECONDS}s" ./internal/netblock
for target in FuzzRIB FuzzWhois FuzzIXPs FuzzFacilities FuzzAs2org FuzzASRel FuzzCones FuzzRDNS; do
	go test -run '^$' -fuzz "^${target}\$" -fuzztime "${FUZZ_SECONDS}s" ./internal/datasets
done

echo "==> all checks passed"
