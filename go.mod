module cloudmap

go 1.22
