package cloudmap

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cloudmap/internal/faults"
	"cloudmap/internal/pipeline"
	"cloudmap/internal/probe"
	"cloudmap/internal/tracefile"
)

// chaosConfig is the faulted twin of SmallConfig: same seed and topology,
// plus the checked-in moderate fault plan and a 3-attempt retry policy.
func chaosConfig(t *testing.T) Config {
	t.Helper()
	plan, err := faults.LoadPlan("testdata/faultplans/moderate.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.Faults = plan
	cfg.Retry = probe.RetryPolicy{MaxAttempts: 3, BackoffSec: 1, BackoffFactor: 2}
	return cfg
}

var (
	chaosOnce sync.Once
	chaosRes  *Result
	chaosRep  *RunReport
	chaosErr  error
)

// chaosRun executes the faulted pipeline once for the whole test binary.
func chaosRun(t *testing.T) (*Result, *RunReport) {
	t.Helper()
	chaosOnce.Do(func() {
		chaosRes, chaosRep, chaosErr = RunPipeline(context.Background(), nil, chaosConfig(t), RunOptions{})
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosRes, chaosRep
}

// TestChaosPrecisionHoldsRecallDegrades: under the moderate fault plan the
// §6.2 pinning cross-validation keeps its precision (drop < 2 points versus
// the fault-free twin) while recall degrades without collapsing — the
// paper's heuristics are conservative, so losing probes loses coverage, not
// correctness.
func TestChaosPrecisionHoldsRecallDegrades(t *testing.T) {
	base := smallRun(t)
	faulted, _ := chaosRun(t)

	bp, fp := base.PinningCV.Precision, faulted.PinningCV.Precision
	if fp < bp-0.02 {
		t.Errorf("precision collapsed under faults: %.4f -> %.4f (drop %.4f >= 0.02)", bp, fp, bp-fp)
	}
	br, fr := base.PinningCV.Recall, faulted.PinningCV.Recall
	if fr > br+0.02 {
		t.Errorf("recall inflated under faults: %.4f -> %.4f", br, fr)
	}
	if fr < br/2 {
		t.Errorf("recall collapsed under faults: %.4f -> %.4f (more than halved)", br, fr)
	}
}

// TestChaosManifestDegradation: a faulted run's manifest must carry a
// non-empty degradation section — per-round fault/retry stats, the stages
// that ran degraded, and the §8 bdrmap baseline sitting the run out.
func TestChaosManifestDegradation(t *testing.T) {
	res, rep := chaosRun(t)

	deg := rep.Manifest.Degradation
	if deg == nil {
		t.Fatal("faulted run has no manifest degradation section")
	}
	if len(deg.Rounds) == 0 {
		t.Fatal("degradation section has no per-round stats")
	}
	cs, ok := deg.Rounds["campaign"]
	if !ok || !cs.Degraded() {
		t.Fatalf("campaign round missing or undegraded: %+v", deg.Rounds)
	}
	if deg.ProbeLossPct <= 0 || deg.ProbeLossPct >= 100 {
		t.Errorf("probe loss %.2f%% outside (0, 100)", deg.ProbeLossPct)
	}
	if deg.RetriesSpent == 0 {
		t.Error("no retries spent under a moderate plan with MaxAttempts=3")
	}
	if len(deg.DegradedStages) == 0 {
		t.Error("no stages recorded degraded")
	}

	byName := map[string]pipeline.StageResult{}
	for _, sr := range rep.Manifest.Stages {
		byName[sr.Name] = sr
	}
	if got := byName["bdrmap"].Status; got != pipeline.StatusSkippedDegraded {
		t.Errorf("bdrmap status = %q, want %q (must not compare a fault-free baseline against a degraded inference)", got, pipeline.StatusSkippedDegraded)
	}
	if res.Bdrmap != nil {
		t.Error("bdrmap result present despite skipped-degraded stage")
	}
	found := false
	for _, name := range deg.SkippedStages {
		if name == "bdrmap" {
			found = true
		}
	}
	if !found {
		t.Errorf("bdrmap missing from SkippedStages: %v", deg.SkippedStages)
	}

	// A fault-free run must NOT grow a degradation section (old manifests
	// stay byte-compatible).
	if fre := smallReport(t); fre.Manifest.Degradation != nil {
		t.Errorf("fault-free run has a degradation section: %+v", fre.Manifest.Degradation)
	}
}

// TestChaosSameSeedReplayIdentical: two runs with the same seed and the same
// fault plan are byte-identical — the whole fault model is a pure function
// of (seed, plan), never wall-clock or goroutine scheduling.
func TestChaosSameSeedReplayIdentical(t *testing.T) {
	res1, rep1 := chaosRun(t)
	res2, rep2, err := RunPipeline(context.Background(), nil, chaosConfig(t), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res1.Report(), res2.Report()
	if a != b {
		line := 1
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Fatalf("reports diverge at byte %d (line %d)", i, line)
			}
			if a[i] == '\n' {
				line++
			}
		}
		t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
	}
	d1, err := json.Marshal(rep1.Manifest.Degradation)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := json.Marshal(rep2.Manifest.Degradation)
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Fatalf("degradation reports differ:\n  %s\n  %s", d1, d2)
	}
}

// TestChaosWorkerInvariance: the faulted pipeline's artefacts do not depend
// on the worker count (the retry engine hands out per-chunk budgets and
// draws every fault decision from pure hashes).
func TestChaosWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full faulted pipeline run")
	}
	res1, _ := chaosRun(t)
	cfg := chaosConfig(t)
	cfg.Workers = 2
	res2, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Report() != res2.Report() {
		t.Fatal("faulted pipeline output depends on worker count")
	}
}

// TestChaosResumeKeepsDegradation: resuming a faulted run from its
// checkpoints replays degraded traces — the resumed run must re-raise the
// degradation state from the stored manifest (same degradation section,
// bdrmap still sitting it out, identical report) rather than silently
// treating the replayed data as clean.
func TestChaosResumeKeepsDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("two full faulted pipeline runs")
	}
	dir := t.TempDir()
	cfg := chaosConfig(t)
	res1, rep1, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res2, rep2, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Manifest.Degradation == nil {
		t.Fatal("resume dropped the manifest degradation section")
	}
	d1, _ := json.Marshal(rep1.Manifest.Degradation)
	d2, _ := json.Marshal(rep2.Manifest.Degradation)
	if string(d1) != string(d2) {
		t.Fatalf("degradation changed across resume:\n  fresh  %s\n  resume %s", d1, d2)
	}
	for _, sr := range rep2.Manifest.Stages {
		if sr.Name == "bdrmap" && sr.Status != pipeline.StatusSkippedDegraded {
			t.Errorf("bdrmap after resume = %q, want %q", sr.Status, pipeline.StatusSkippedDegraded)
		}
	}
	if res2.Bdrmap != nil {
		t.Error("resumed run produced a bdrmap comparison from degraded traces")
	}
	if res1.Report() != res2.Report() {
		t.Fatal("resumed faulted report differs from the fresh one")
	}
}

// TestConfigHashFaultPlan: the fault plan participates in the config hash by
// value — equal plans at different addresses hash the same (a pointer in a
// %#v dump would differ every process), and changing a knob changes the hash
// so a resume cannot silently mix checkpoints from different plans.
func TestConfigHashFaultPlan(t *testing.T) {
	base := configHash(SmallConfig())

	cfgA := SmallConfig()
	cfgA.Faults = &faults.Plan{Seed: 7, Loss: &faults.LossPlan{WindowSec: 30, WindowProb: 0.1, LossProb: 0.5}}
	cfgB := SmallConfig()
	cfgB.Faults = &faults.Plan{Seed: 7, Loss: &faults.LossPlan{WindowSec: 30, WindowProb: 0.1, LossProb: 0.5}}
	if configHash(cfgA) != configHash(cfgB) {
		t.Error("equal fault plans at different addresses hash differently")
	}
	if configHash(cfgA) == base {
		t.Error("fault plan does not affect the config hash")
	}
	cfgC := SmallConfig()
	cfgC.Faults = &faults.Plan{Seed: 8, Loss: &faults.LossPlan{WindowSec: 30, WindowProb: 0.1, LossProb: 0.5}}
	if configHash(cfgC) == configHash(cfgA) {
		t.Error("fault plan seed does not affect the config hash")
	}
}

// TestMidDAGFailureLeavesResumableCheckpoints: when a mid-DAG stage fails,
// the manifest marks it failed and every downstream stage not-run, and the
// checkpoints written before the failure stay complete — removing the cause
// and resuming replays them instead of re-probing.
func TestMidDAGFailureLeavesResumableCheckpoints(t *testing.T) {
	dir := t.TempDir()
	// A directory squatting on the expansion checkpoint path makes
	// tracefile.Create fail, killing the expansion stage mid-DAG.
	blocker := filepath.Join(dir, "expansion.traces.bin")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}

	cfg := SmallConfig()
	res, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir})
	if err == nil {
		t.Fatal("pipeline succeeded despite blocked expansion checkpoint")
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	if rep == nil {
		t.Fatal("failed run returned no report")
	}
	byName := map[string]pipeline.StageResult{}
	for _, sr := range rep.Manifest.Stages {
		byName[sr.Name] = sr
	}
	for name, want := range map[string]pipeline.Status{
		"topo-gen":  pipeline.StatusOK,
		"campaign":  pipeline.StatusOK,
		"border":    pipeline.StatusOK,
		"expansion": pipeline.StatusFailed,
	} {
		if got := byName[name].Status; got != want {
			t.Errorf("stage %s = %q, want %q", name, got, want)
		}
	}
	for _, name := range []string{"alias", "verify", "pinning", "vpi", "classify", "icg", "bdrmap", "evaluate"} {
		if got := byName[name].Status; got != pipeline.StatusNotRun {
			t.Errorf("downstream stage %s = %q, want %q", name, got, pipeline.StatusNotRun)
		}
	}
	if !strings.Contains(err.Error(), "expansion") {
		t.Errorf("error %q does not name the failing stage", err)
	}

	// The round-1 checkpoint written before the failure must be complete.
	sum, err := tracefile.ScanFile(filepath.Join(dir, "campaign.traces.bin"))
	if err != nil || !sum.Complete {
		t.Fatalf("campaign checkpoint after mid-DAG failure: sum=%+v err=%v", sum, err)
	}

	// Clear the cause; a resume must replay round 1 rather than re-probe.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	res2, rep2, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume after clearing the failure: %v", err)
	}
	byName2 := map[string]pipeline.StageResult{}
	for _, sr := range rep2.Manifest.Stages {
		byName2[sr.Name] = sr
	}
	if got := byName2["campaign"].Status; got != pipeline.StatusResumed {
		t.Errorf("campaign after resume = %q, want %q", got, pipeline.StatusResumed)
	}
	if res2 == nil || res2.Report() == "" {
		t.Fatal("resumed run produced no report")
	}
}
