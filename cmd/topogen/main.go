// Command topogen generates a simulated Internet topology and prints its
// ground-truth inventory: entity counts, the Amazon peering mix by kind and
// visibility, and (optionally) a per-peering dump. It is the ground-truth
// view that the inference pipeline never gets to see — useful for
// understanding what a given scale and seed produce.
//
// Usage:
//
//	topogen [-scale small|medium|paper] [-seed N] [-dump]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cloudmap/internal/model"
	"cloudmap/internal/topo"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	dump := flag.Bool("dump", false, "dump every Amazon peering")
	flag.Parse()

	var cfg topo.Config
	switch *scale {
	case "small":
		cfg = topo.SmallConfig()
	case "medium":
		cfg = topo.MediumConfig()
	case "paper":
		cfg = topo.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	start := time.Now()
	t, err := topo.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c := t.Count()
	fmt.Printf("generated in %v (seed %d, scale %.2f)\n", time.Since(start).Round(time.Millisecond), cfg.Seed, cfg.Scale)
	fmt.Printf("orgs=%d ases=%d facilities=%d ixps=%d routers=%d ifaces=%d peerings=%d links=%d\n",
		c.Orgs, c.ASes, c.Facilities, c.IXPs, c.Routers, c.Ifaces, c.Peerings, c.Links)
	fmt.Printf("amazon peer ASes: %d\n\n", c.AmazonPeerASes)

	amazon := t.Amazon()
	kind := map[model.PeeringKind]int{}
	remote, shared := 0, 0
	links := 0
	for i := range t.Peerings {
		p := &t.Peerings[i]
		if p.Cloud != amazon.ID {
			continue
		}
		kind[p.Kind]++
		links += len(p.Links)
		if p.Remote {
			remote++
		}
		if p.SharedPort {
			shared++
		}
	}
	fmt.Println("amazon peerings by kind (ground truth):")
	for _, k := range []model.PeeringKind{model.PeeringPublicIXP, model.PeeringPrivatePhysical, model.PeeringVPI} {
		fmt.Printf("  %-14s %6d\n", k, kind[k])
	}
	fmt.Printf("  remote: %d, shared-port (VPI): %d, links total: %d\n", remote, shared, links)

	if *dump {
		fmt.Println("\nper-peering dump:")
		for i := range t.Peerings {
			p := &t.Peerings[i]
			if p.Cloud != amazon.ID {
				continue
			}
			as := &t.ASes[p.Peer]
			fac := &t.Facilities[p.Facility]
			fmt.Printf("  AS%-6d %-20s %-13s at %-18s (%s) links=%d remote=%v\n",
				as.ASN, as.Name, p.Kind, fac.Name, t.World.Metro(fac.Metro).Code, len(p.Links), p.Remote)
		}
	}
}
