// Command cloudmap runs the full reproduction pipeline — topology
// generation, traceroute campaigns, border inference, verification, pinning,
// VPI detection, grouping, graph analysis, and the bdrmap baseline — and
// prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	cloudmap [-scale small|medium|paper] [-seed N] [-skip-bdrmap] [-o report.txt]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"cloudmap"
	"cloudmap/internal/tracefile"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel probing workers (output is identical regardless)")
	skipBdrmap := flag.Bool("skip-bdrmap", false, "skip the §8 bdrmap baseline")
	out := flag.String("o", "", "also write the report to this file")
	traces := flag.String("traces", "", "archive the Amazon campaign to this tracefile")
	csvDir := flag.String("csv", "", "dump figure data as CSV files into this directory")
	flag.Parse()

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, medium, or paper)", *scale)
	}
	cfg.Topology.Seed = *seed
	cfg.Workers = *workers
	cfg.SkipBdrmap = *skipBdrmap

	var traceWriter *tracefile.Writer
	if *traces != "" {
		f, err := os.Create(*traces)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w, err := tracefile.NewWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		traceWriter = w
		cfg.RecordTraces = w.Sink()
	}

	start := time.Now()
	res, err := cloudmap.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campaign archived to %s\n", *traces)
	}
	report := res.Report()
	fmt.Print(report)
	fmt.Printf("\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *csvDir != "" {
		if err := res.WriteFigureData(*csvDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("figure data written to %s\n", *csvDir)
	}
}
