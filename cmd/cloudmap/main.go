// Command cloudmap runs the full reproduction pipeline — topology
// generation, traceroute campaigns, border inference, verification, pinning,
// VPI detection, grouping, graph analysis, and the bdrmap baseline — and
// prints every table and figure of the paper's evaluation.
//
// Usage:
//
//	cloudmap [-scale small|medium|paper] [-seed N] [-skip-bdrmap] [-o report.txt]
//	         [-checkpoint-dir DIR] [-resume] [-metrics-out m.json]
//	         [-fault-plan plan.json] [-max-retries N] [-retry-budget N]
//	         [-dirty-plan plan.json] [-datasets-dir DIR]
//	         [-journal-out j.jsonl] [-trace-out t.json] [-debug-addr :6060]
//	         [-progress 5s]
//
// The run is interruptible: Ctrl-C cancels the pipeline promptly, and with
// -checkpoint-dir the probing campaigns are persisted as they run, so a
// second invocation with -resume replays the stored traces instead of
// re-probing.
//
// -fault-plan layers the deterministic fault model (ICMP rate limiting,
// bursty loss, link flaps, region outages) under the campaigns; the same
// seed and plan replay byte-identically. -max-retries re-probes
// fault-degraded traceroutes with exponential virtual-time backoff, and
// -retry-budget caps the total retries a campaign may spend (exhaustion is
// fail-soft and recorded in the manifest's degradation section).
//
// -dirty-plan corrupts the serialized input datasets before the hygiene
// layer parses them back (row drops, truncation, staleness, conflicting
// duplicates, bogon ASNs — see internal/datasets and testdata/dirtyplans);
// quarantine coverage lands in the manifest's dataset_hygiene section.
// -datasets-dir persists the serialized corpus for inspection.
//
// Observability: -journal-out streams the deterministic JSONL event journal
// (spans, faults, retries, quarantines — replays byte-identically for the
// same seed and plans when sorted); -trace-out writes a Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing; -debug-addr serves live
// Prometheus text metrics, a progress snapshot, and net/http/pprof while
// the run executes; -progress prints a one-line ticker to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloudmap"
	"cloudmap/internal/datasets"
	"cloudmap/internal/dispatch"
	"cloudmap/internal/faults"
	"cloudmap/internal/metrics"
	"cloudmap/internal/obs"
	olog "cloudmap/internal/obs/log"
	"cloudmap/internal/probe"
	"cloudmap/internal/tracefile"
)

// splitAgents parses the -agents list: comma-separated base URLs, empty
// entries dropped.
func splitAgents(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	workers := flag.Int("workers", 0, "parallel probing workers; <=0 uses all CPUs (output is identical regardless)")
	skipBdrmap := flag.Bool("skip-bdrmap", false, "skip the §8 bdrmap baseline")
	out := flag.String("o", "", "also write the report to this file")
	traces := flag.String("traces", "", "archive the Amazon campaign to this tracefile (.bin = binary v2, .gz = gzip text)")
	csvDir := flag.String("csv", "", "dump figure data as CSV files into this directory")
	checkpointDir := flag.String("checkpoint-dir", "", "persist probing rounds and the run manifest in this directory")
	resume := flag.Bool("resume", false, "replay complete campaign checkpoints from -checkpoint-dir instead of re-probing")
	metricsOut := flag.String("metrics-out", "", "write the run manifest (per-stage timings, allocations, counters) as JSON to this file")
	faultPlan := flag.String("fault-plan", "", "inject faults from this JSON plan (see internal/faults and testdata/faultplans)")
	maxRetries := flag.Int("max-retries", 0, "re-probe fault-degraded traceroutes up to N times (0 disables retries)")
	retryBudget := flag.Int64("retry-budget", 0, "cap total retries per campaign; 0 means unlimited (fail-soft when exhausted)")
	dirtyPlan := flag.String("dirty-plan", "", "corrupt input datasets from this JSON plan (see internal/datasets and testdata/dirtyplans)")
	datasetsDir := flag.String("datasets-dir", "", "persist the serialized dataset corpus into this directory")
	journalOut := flag.String("journal-out", "", "stream the deterministic JSONL event journal to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto / chrome://tracing) to this file")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics (Prometheus text), /progress, and /debug/pprof on this address while the run executes")
	progressEvery := flag.Duration("progress", 5*time.Second, "print a one-line progress ticker to stderr at this interval (0 disables)")
	agents := flag.String("agents", "", "comma-separated cloudmapagent base URLs; probing campaigns dispatch chunks to the fleet, falling back to local execution (output is byte-identical either way)")
	leaseTimeout := flag.Duration("lease-timeout", 0, "per-lease deadline for dispatched chunks (0 = 60s)")
	flag.Parse()

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, medium, or paper)", *scale)
	}
	cfg.Topology.Seed = *seed
	cfg.Workers = *workers
	cfg.SkipBdrmap = *skipBdrmap
	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	if *maxRetries > 0 {
		cfg.Retry = probe.DefaultRetryPolicy()
		cfg.Retry.MaxAttempts = *maxRetries + 1
		cfg.Retry.Budget = *retryBudget
	}
	if *dirtyPlan != "" {
		plan, err := datasets.LoadDirtyPlan(*dirtyPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Dirty = plan
	}

	// The archive encoding follows the extension: .bin for the v2 binary
	// format, .gz for gzip text, anything else plain text.
	var traceWriter *tracefile.FileWriter
	if *traces != "" {
		fw, err := tracefile.Create(*traces)
		if err != nil {
			log.Fatal(err)
		}
		traceWriter = fw
		cfg.RecordTraces = fw.Sink()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := metrics.NewRegistry()
	prog := obs.NewProgress(reg)
	if *debugAddr != "" {
		srv, err := obs.Serve(*debugAddr, reg, prog)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (metrics, progress, pprof)\n", srv.Addr())
	}
	if *progressEvery > 0 {
		stopTicker := obs.StartTicker(os.Stderr, *progressEvery, prog)
		defer stopTicker()
	}

	var disp *dispatch.Options
	if *agents != "" {
		disp = &dispatch.Options{
			Agents:       splitAgents(*agents),
			LeaseTimeout: *leaseTimeout,
			Metrics:      reg,
			Log:          olog.New(os.Stderr, olog.Info),
		}
	}

	start := time.Now()
	res, rep, err := cloudmap.RunPipeline(ctx, nil, cfg, cloudmap.RunOptions{
		CheckpointDir: *checkpointDir,
		Resume:        *resume,
		Metrics:       reg,
		DatasetsDir:   *datasetsDir,
		JournalPath:   *journalOut,
		TracePath:     *traceOut,
		Progress:      prog,
		Dispatch:      disp,
	})
	if rep != nil && *metricsOut != "" {
		f, merr := os.Create(*metricsOut)
		if merr == nil {
			merr = rep.WriteManifestJSON(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if merr != nil {
			log.Printf("metrics: %v", merr)
		} else {
			fmt.Printf("run manifest written to %s\n", *metricsOut)
		}
	}
	if err != nil {
		// rep is nil when the run was rejected before any stage started
		// (bad options, incompatible checkpoint dir) — no checkpoints then.
		if *checkpointDir != "" && rep != nil {
			log.Printf("run did not finish; partial checkpoints kept in %s", *checkpointDir)
		}
		if traceWriter != nil {
			// Keep what was captured, without the completeness trailer.
			traceWriter.Close()
		}
		log.Fatal(err)
	}
	if traceWriter != nil {
		if err := traceWriter.Finish(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campaign archived to %s\n", *traces)
	}
	if *journalOut != "" {
		fmt.Printf("event journal written to %s\n", *journalOut)
	}
	if *traceOut != "" {
		fmt.Printf("chrome trace written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	report := res.Report()
	fmt.Print(report)
	if h := rep.Manifest.DatasetHygiene; h != nil && (h.TotalQuarantined > 0 || h.TotalConflicts > 0) {
		fmt.Printf("\ndataset hygiene: kept %d records, quarantined %d, resolved %d origin conflicts",
			h.TotalKept, h.TotalQuarantined, h.TotalConflicts)
		if len(h.EmptyDatasets) > 0 {
			fmt.Printf(", empty datasets %v", h.EmptyDatasets)
		}
		fmt.Println()
	}
	if d := rep.Manifest.Degradation; d != nil {
		fmt.Printf("\nrun degraded: %.2f%% probe loss, %d retries spent, %d records quarantined, degraded stages %v, skipped stages %v\n",
			d.ProbeLossPct, d.RetriesSpent, d.QuarantinedRecords, d.DegradedStages, d.SkippedStages)
	}
	fmt.Printf("\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *csvDir != "" {
		if err := res.WriteFigureData(*csvDir); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("figure data written to %s\n", *csvDir)
	}
}
