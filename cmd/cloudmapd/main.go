// Command cloudmapd is the resident form of the reproduction: a daemon
// that keeps a live peering map of the simulated Amazon fabric and serves
// it over HTTP while re-running the inference pipeline on recurring epochs.
//
// Usage:
//
//	cloudmapd [-scale small|medium|paper] [-seed N] [-workers N]
//	          [-addr 127.0.0.1:7080] [-addr-file F]
//	          [-epochs N] [-epoch-every 0s] [-churn-plan plan.json]
//	          [-state-dir DIR] [-checkpoint-every N]
//	          [-epoch-timeout 0s] [-epoch-retries 2] [-retry-backoff 1s]
//	          [-history-limit N] [-watch-keepalive 30s]
//	          [-checkpoint-dir DIR] [-epoch-journal j.jsonl]
//	          [-drain-timeout 30s] [-log-level info]
//	          [-agents URL,URL,...] [-lease-timeout 60s]
//
// Each epoch the daemon derives the next world state from the churn plan
// (re-homed prefixes, facility tenant moves, DNS renames — all
// deterministic in seed and epoch number), then runs the pipeline
// incrementally: stages whose input hashes are unchanged since their last
// clean run are skipped, annotation-only changes replay the checkpointed
// probing campaigns instead of re-probing, and only genuinely dependent
// inference re-executes. The resulting map diffs against the previous
// epoch and the deltas stream to watchers.
//
// The HTTP surface on -addr serves the query API (/v1/status,
// /v1/peerings, /v1/deltas, /v1/watch, /v1/fleet) alongside the admin
// plane (/metrics, /progress, /logz, /debug/pprof/). cloudmapctl is the
// CLI client. With -agents, /v1/fleet reports live per-agent health
// (state, heartbeat age, lease accounting, throughput) and /metrics grows
// per-agent service.agent.<id>.* series.
//
// With -state-dir the daemon is crash-safe: every epoch is fsynced to a
// CRC-framed journal before the loop advances, the store checkpoints every
// -checkpoint-every epochs, and a daemon restarted on the same state dir —
// even after kill -9 mid-epoch — rehydrates the published map, re-runs the
// interrupted epoch, and continues the journal byte-identically to an
// uninterrupted run. Failed epochs are retried with backoff and, once
// -epoch-retries is exhausted, published degraded (previous map, empty
// delta set) rather than killing the process.
//
// Shutdown is graceful: the first SIGINT/SIGTERM drains the in-flight
// epoch, flushes the epoch journal and checkpoints, and gives in-flight
// HTTP requests -drain-timeout to finish; a second signal aborts hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloudmap"
	"cloudmap/internal/metrics"
	"cloudmap/internal/obs"
	olog "cloudmap/internal/obs/log"
	"cloudmap/internal/service"
)

// splitAgents parses the -agents list: comma-separated base URLs, empty
// entries dropped.
func splitAgents(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	workers := flag.Int("workers", 0, "parallel probing workers; <=0 uses all CPUs (output is identical regardless)")
	skipBdrmap := flag.Bool("skip-bdrmap", true, "skip the §8 bdrmap baseline each epoch")
	addr := flag.String("addr", "127.0.0.1:7080", "serve the query API and admin plane on this address (\":0\" picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	epochs := flag.Int("epochs", 0, "stop after N epochs; 0 runs until signalled")
	epochEvery := flag.Duration("epoch-every", 0, "wall-clock pause between epochs (scheduling only; results are virtual-time)")
	churnPlan := flag.String("churn-plan", "", "evolve the world between epochs from this JSON plan (default: a moderate built-in plan; see testdata/churnplans)")
	stateDir := flag.String("state-dir", "", "keep all durable state (epoch journal, probing and store checkpoints) here; a restart on the same dir resumes where the previous process stopped")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write a store checkpoint every N epochs (bounds recovery replay; 0 = 5 with -state-dir)")
	epochTimeout := flag.Duration("epoch-timeout", 0, "per-epoch deadline; an epoch exceeding it fails and is retried (0 disables)")
	epochRetries := flag.Int("epoch-retries", 2, "retries before a failed epoch is published degraded")
	retryBackoff := flag.Duration("retry-backoff", time.Second, "pause before the first retry, doubling per retry")
	historyLimit := flag.Int("history-limit", 0, "retain at most N epochs of deltas; older askers are told to resync (0 = unlimited)")
	watchKeepalive := flag.Duration("watch-keepalive", 0, "SSE comment interval on idle /v1/watch streams (0 = 30s, negative disables)")
	checkpointDir := flag.String("checkpoint-dir", "", "persist probing rounds here so dataset-only epochs replay instead of re-probing (superseded by -state-dir)")
	epochJournal := flag.String("epoch-journal", "", "append one deterministic CRC-framed JSON line per epoch (stage statuses, input hashes, map deltas) to this file (superseded by -state-dir)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight HTTP requests at shutdown")
	agents := flag.String("agents", "", "comma-separated cloudmapagent base URLs (e.g. http://127.0.0.1:7091,http://127.0.0.1:7092); probing campaigns dispatch chunks to the fleet, falling back to local execution when no agent can finish a chunk")
	leaseTimeout := flag.Duration("lease-timeout", 0, "per-lease deadline for dispatched chunks; a straggling agent is marked lost and the chunk re-dispatches (0 = 60s)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	flag.Parse()

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, medium, or paper)", *scale)
	}
	cfg.Topology.Seed = *seed
	cfg.Workers = *workers
	cfg.SkipBdrmap = *skipBdrmap

	churn := service.DefaultChurnPlan()
	if *churnPlan != "" {
		p, err := service.LoadChurnPlan(*churnPlan)
		if err != nil {
			log.Fatal(err)
		}
		churn = p
	}

	reg := metrics.NewRegistry()
	daemon, err := service.New(service.Config{
		Pipeline:        cfg,
		Churn:           churn,
		Epochs:          *epochs,
		EpochEvery:      *epochEvery,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
		EpochTimeout:    *epochTimeout,
		EpochRetries:    *epochRetries,
		RetryBackoff:    *retryBackoff,
		HistoryLimit:    *historyLimit,
		WatchKeepalive:  *watchKeepalive,
		CheckpointDir:   *checkpointDir,
		JournalPath:     *epochJournal,
		Agents:          splitAgents(*agents),
		LeaseTimeout:    *leaseTimeout,
		Metrics:         reg,
		Progress:        obs.NewProgress(reg),
		Log:             olog.New(os.Stderr, level),
	})
	if err != nil {
		log.Fatal(err)
	}
	if rec := daemon.Recovery(); rec.Recovered {
		fmt.Printf("cloudmapd recovered: resuming after epoch %d (checkpoint %d, %d journal records replayed)\n",
			rec.LastEpoch, rec.CheckpointEpoch, rec.ReplayedEntries)
	}

	srv, err := obs.ServeHandler(*addr, daemon.Handler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloudmapd serving on http://%s (/v1/status, /v1/peerings, /v1/deltas, /v1/watch, /v1/fleet)\n", srv.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// First signal: graceful drain (finish the epoch, flush the journal,
	// let in-flight requests complete). Second signal: hard abort.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "cloudmapd: draining (signal again to abort)")
		daemon.Stop()
		<-sigs
		fmt.Fprintln(os.Stderr, "cloudmapd: aborting")
		cancel()
	}()

	runErr := daemon.Run(ctx)

	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		// Streaming watchers hold their connections open past the drain
		// deadline; close them rather than hanging shutdown forever.
		srv.Close()
	}

	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		log.Fatal(runErr)
	}
	fmt.Printf("cloudmapd stopped after epoch %d\n", daemon.Epoch())
}
