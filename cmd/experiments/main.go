// Command experiments runs the paper-scale reproduction and emits the
// paper-vs-measured record behind EXPERIMENTS.md: for every table and figure
// it prints the paper's headline numbers next to the measured ones, plus the
// full rendered report.
//
// Usage:
//
//	experiments [-scale paper] [-seed N] [-o experiments_report.txt]
//	            [-checkpoint-dir DIR] [-resume] [-metrics-out m.json]
//	            [-fault-plan plan.json] [-max-retries N] [-retry-budget N]
//	            [-dirty-plan plan.json] [-datasets-dir DIR]
//	            [-journal-out j.jsonl] [-trace-out t.json]
//	            [-debug-addr :6060] [-progress 5s]
//
// -fault-plan runs the reproduction under the deterministic fault model
// (internal/faults) and -max-retries/-retry-budget set the probe retry
// policy, so the paper-vs-measured comparison can be studied under
// realistic measurement adversity. -dirty-plan corrupts the serialized
// input datasets before the hygiene layer parses them back, exercising the
// same comparison over dirty public data (see internal/datasets).
//
// The observability flags mirror cmd/cloudmap: -journal-out (deterministic
// JSONL event journal), -trace-out (Chrome trace-event JSON for Perfetto),
// -debug-addr (live Prometheus metrics + pprof), -progress (stderr ticker)
// — paper-scale runs are long, so the live view matters most here.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cloudmap"
	"cloudmap/internal/datasets"
	"cloudmap/internal/evaluate"
	"cloudmap/internal/faults"
	"cloudmap/internal/metrics"
	"cloudmap/internal/obs"
	"cloudmap/internal/probe"
	"cloudmap/internal/stats"
)

func main() {
	scale := flag.String("scale", "paper", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	workers := flag.Int("workers", 0, "parallel probing workers; <=0 uses all CPUs (output is identical regardless)")
	out := flag.String("o", "experiments_report.txt", "write the full report here")
	checkpointDir := flag.String("checkpoint-dir", "", "persist probing rounds and the run manifest in this directory")
	resume := flag.Bool("resume", false, "replay complete campaign checkpoints from -checkpoint-dir instead of re-probing")
	metricsOut := flag.String("metrics-out", "", "write the run manifest (per-stage timings, counters) as JSON to this file")
	faultPlan := flag.String("fault-plan", "", "inject faults from this JSON plan (see internal/faults and testdata/faultplans)")
	maxRetries := flag.Int("max-retries", 0, "re-probe fault-degraded traceroutes up to N times (0 disables retries)")
	retryBudget := flag.Int64("retry-budget", 0, "cap total retries per campaign; 0 means unlimited (fail-soft when exhausted)")
	dirtyPlan := flag.String("dirty-plan", "", "corrupt input datasets from this JSON plan (see internal/datasets and testdata/dirtyplans)")
	datasetsDir := flag.String("datasets-dir", "", "persist the serialized dataset corpus into this directory")
	journalOut := flag.String("journal-out", "", "stream the deterministic JSONL event journal to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto / chrome://tracing) to this file")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics (Prometheus text), /progress, and /debug/pprof on this address while the run executes")
	progressEvery := flag.Duration("progress", 5*time.Second, "print a one-line progress ticker to stderr at this interval (0 disables)")
	flag.Parse()

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Topology.Seed = *seed
	cfg.Workers = *workers
	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	if *maxRetries > 0 {
		cfg.Retry = probe.DefaultRetryPolicy()
		cfg.Retry.MaxAttempts = *maxRetries + 1
		cfg.Retry.Budget = *retryBudget
	}
	if *dirtyPlan != "" {
		plan, err := datasets.LoadDirtyPlan(*dirtyPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Dirty = plan
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := metrics.NewRegistry()
	prog := obs.NewProgress(reg)
	if *debugAddr != "" {
		srv, serr := obs.Serve(*debugAddr, reg, prog)
		if serr != nil {
			log.Fatal(serr)
		}
		defer srv.Close()
		fmt.Printf("debug server on http://%s (metrics, progress, pprof)\n", srv.Addr())
	}
	if *progressEvery > 0 {
		stopTicker := obs.StartTicker(os.Stderr, *progressEvery, prog)
		defer stopTicker()
	}

	start := time.Now()
	res, rep, err := cloudmap.RunPipeline(ctx, nil, cfg, cloudmap.RunOptions{
		CheckpointDir: *checkpointDir,
		Resume:        *resume,
		Metrics:       reg,
		DatasetsDir:   *datasetsDir,
		JournalPath:   *journalOut,
		TracePath:     *traceOut,
		Progress:      prog,
	})
	if rep != nil && *metricsOut != "" {
		if f, merr := os.Create(*metricsOut); merr != nil {
			log.Printf("metrics: %v", merr)
		} else {
			if merr := rep.WriteManifestJSON(f); merr != nil {
				log.Printf("metrics: %v", merr)
			}
			f.Close()
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Round(time.Second)

	var b strings.Builder
	fmt.Fprintf(&b, "paper-vs-measured (scale=%s seed=%d runtime=%v)\n", *scale, *seed, elapsed)
	fmt.Fprintf(&b, "%-44s | %-22s | %s\n", "quantity", "paper", "measured")
	row := func(name, paper, measured string) {
		fmt.Fprintf(&b, "%-44s | %-22s | %s\n", name, paper, measured)
	}

	// Table 1.
	fa, fc := res.Border.BreakdownABIs(), res.Border.BreakdownCBIs()
	row("T1 ABIs (final)", "3.78k", fmt.Sprintf("%d", fa.Total))
	row("T1 CBIs (final)", "24.75k", fmt.Sprintf("%d", fc.Total))
	row("T1 CBI growth from expansion", "21.73k -> 24.75k", fmt.Sprintf("%d -> %d", res.Round1CBIs.Total, fc.Total))
	row("T1 ABI BGP%/WHOIS%", "38.85 / 61.15", fmt.Sprintf("%.1f / %.1f", pctf(fa.BGP, fa.Total), pctf(fa.Whois, fa.Total)))
	row("T1 CBI IXP%", "17.86", fmt.Sprintf("%.1f", pctf(fc.IXP, fc.Total)))

	// Table 2.
	totalABIs := len(res.Border.CandidateABIs())
	confirmed := totalABIs - res.Verified.UnconfirmedABIs
	row("T2 ABIs confirmed by heuristics", "87.8%", fmt.Sprintf("%.1f%%", pctf(confirmed, totalABIs)))
	row("T2 alias corrections (ABI>CBI/CBI>ABI/CBI>CBI)", "18 / 2 / 25",
		fmt.Sprintf("%d / %d / %d", res.Verified.ABIToCBI, res.Verified.CBIToABI, res.Verified.CBIOwnerChange))

	// Table 3 / §6.
	p := res.Pinning
	row("T3 metro-level pinning coverage", "50.21%", fmt.Sprintf("%.1f%%", pctf(len(p.Metro), p.TotalIfaces)))
	row("T3 coverage incl. region fallback", "80.58%", fmt.Sprintf("%.1f%%", pctf(len(p.Metro)+p.RegionPinned, p.TotalIfaces)))
	row("T3 ABIs pinned", "75.87%", fmt.Sprintf("%.1f%%", pctf(p.PinnedABIs, p.TotalABIs)))
	row("§6.2 CV precision", "99.34%", fmt.Sprintf("%.2f%%", 100*res.PinningCV.Precision))
	row("§6.2 CV recall", "57.21%", fmt.Sprintf("%.2f%%", 100*res.PinningCV.Recall))

	// Figures 4/5.
	row("F4a ABI min-RTT knee", "2 ms", fmt.Sprintf("%.2f ms", p.NativeKnee))
	row("F4a fraction under 2ms", "~40%", fmt.Sprintf("%.1f%%", 100*stats.NewCDF(p.ABIMinRTTs).FracBelow(2)))
	row("F4b segment RTT-diff knee", "2 ms", fmt.Sprintf("%.2f ms", p.SegKnee))
	row("F4b fraction under 2ms", "~50%", fmt.Sprintf("%.1f%%", 100*stats.NewCDF(p.SegmentDiffs).FracBelow(2)))
	above := 0
	for _, r := range p.RegionRatios {
		if r > 1.5 {
			above++
		}
	}
	row("F5 ratio>1.5 among unpinned", "57%", fmt.Sprintf("%.1f%%", pctf(above, len(p.RegionRatios))))

	// Table 4.
	v := res.VPI
	row("T4 VPI share of CBIs (cumulative)", "20.23%", fmt.Sprintf("%.2f%%", pctf(len(v.VPICBIs), v.AmazonNonIXPCBIs)))
	row("T4 Microsoft pairwise share", "18.93%", fmt.Sprintf("%.2f%%", pctf(len(v.Pairwise["microsoft"]), v.AmazonNonIXPCBIs)))
	row("T4 Oracle pairwise", "0", fmt.Sprintf("%d", len(v.Pairwise["oracle"])))

	// Table 5 / §7.
	g := res.Groups
	row("T5 Pb AS share", "76%", fmt.Sprintf("%.0f%%", pctf(g.Aggregates["Pb"].ASes, g.PeerASes)))
	row("T5 Pr-nB AS share", "33%", fmt.Sprintf("%.0f%%", pctf(g.Aggregates["Pr-nB"].ASes, g.PeerASes)))
	row("T5 Pr-B AS share", "3%", fmt.Sprintf("%.0f%%", pctf(g.Aggregates["Pr-B"].ASes, g.PeerASes)))
	row("T5 CBIs/AS for Pr-B", "65", ratioStr(g.Aggregates["Pr-B"].CBIs, g.Aggregates["Pr-B"].ASes))
	row("T5 CBIs/AS for Pr-nB", "11", ratioStr(g.Aggregates["Pr-nB"].CBIs, g.Aggregates["Pr-nB"].ASes))
	row("T5 CBIs/AS for Pb", "2", ratioStr(g.Aggregates["Pb"].CBIs, g.Aggregates["Pb"].ASes))
	row("§7.2 hidden peering share", "33.29%", fmt.Sprintf("%.2f%%", 100*g.HiddenShare))
	topCombo := "-"
	if len(g.Combos) > 0 {
		topCombo = fmt.Sprintf("%s (%d)", g.Combos[0].Combo, g.Combos[0].ASNs)
	}
	row("T6 largest hybrid combo", "Pb-nB (2187)", topCombo)
	row("§7.3 BGP coverage", "~93%", fmt.Sprintf("%.1f%%", g.CoveragePct))
	row("§7.3 peerings beyond BGP", ">3k of 3.3k", fmt.Sprintf("%d of %d", g.BeyondBGP, g.PeerASes))
	row("§7.3 dx DNS names on Pr-nB CBIs", "125", fmt.Sprintf("%d", g.DXNames))
	row("§7.3 VLAN-tagged names", "170", fmt.Sprintf("%d", g.VLANNames))

	// Figure 7.
	gr := res.Graph
	row("F7 largest connected component", "92.3%", fmt.Sprintf("%.1f%%", 100*gr.LargestCCFrac))
	row("F7 intra-metro pinned peerings", "98%", fmt.Sprintf("%.1f%%", 100*gr.IntraMetroShare))
	abiCDF := stats.NewCDF(gr.ABIDegrees)
	row("F7a ABIs with degree 1", "30%", fmt.Sprintf("%.0f%%", 100*abiCDF.FracBelow(1)))
	cbiCDF := stats.NewCDF(gr.CBIDegrees)
	row("F7b CBIs with degree <= 8", "90%", fmt.Sprintf("%.0f%%", 100*cbiCDF.FracBelow(8)))

	// §8.
	if res.Bdrmap != nil {
		c := res.Bdrmap
		row("§8 bdrmap multi-owner CBIs", ">500", fmt.Sprintf("%d", c.MultiOwnerCBIs))
		row("§8 bdrmap ABI/CBI flips", "872", fmt.Sprintf("%d", c.Flipped))
		row("§8 flips in Amazon space", "97%", fmt.Sprintf("%.0f%%", pctf(c.FlippedAmazonSpace, c.Flipped)))
		row("§8 bdrmap ASes vs pipeline", "2.66k vs 3.55k", fmt.Sprintf("%d vs %d", c.ASes, g.PeerASes))
	}

	// The evaluation the paper could not run: score the pipeline against
	// the simulator's ground truth.
	scorecard := evaluate.Evaluate(res.System.Topology, res.Border, res.Verified, res.VPI, res.Pinning)
	b.WriteString("\n")
	b.WriteString(scorecard.String())

	fmt.Print(b.String())
	full := b.String() + "\n\n" + res.Report()
	if err := os.WriteFile(*out, []byte(full), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull report written to %s (runtime %v)\n", *out, elapsed)
}

func pctf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func ratioStr(n, d int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(n)/float64(d))
}
