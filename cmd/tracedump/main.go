// Command tracedump issues a single traceroute in the simulated world and
// prints the annotated hop list — the scamper-plus-annotation view the
// paper's pipeline consumes. It is the debugging loupe for the forwarding
// plane: where a probe exits Amazon, which segment would be inferred as the
// interconnection, and how each hop resolves against the public datasets.
//
// It is also the tracefile format tool: -convert re-encodes a campaign
// checkpoint between the text and binary encodings (sniffing text, gzip and
// binary input transparently), and -stat summarises a file's on-disk shape.
//
// Usage:
//
//	tracedump -dst 64.0.0.1 [-cloud amazon] [-region 0] [-scale small] [-seed N] [-save traces.txt]
//	tracedump -convert campaign.traces.bin -to text -o campaign.traces.gz
//	tracedump -stat campaign.traces.bin
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cloudmap"
	"cloudmap/internal/netblock"
	"cloudmap/internal/probe"
	"cloudmap/internal/registry"
	"cloudmap/internal/tracefile"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	cloud := flag.String("cloud", "amazon", "probing cloud")
	region := flag.Int("region", 0, "probing region index")
	dstFlag := flag.String("dst", "", "destination address (required)")
	save := flag.String("save", "", "append the trace to this tracefile")
	convert := flag.String("convert", "", "tracefile to re-encode (any encoding; use with -to and -o)")
	to := flag.String("to", "binary", "conversion target format: text or binary")
	out := flag.String("o", "", "conversion output path (text output ending in .gz is gzipped)")
	stat := flag.String("stat", "", "tracefile to summarise (records, chunks, bytes/trace, dictionary hit rate)")
	flag.Parse()

	if *stat != "" {
		if err := runStat(*stat); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *convert != "" {
		if err := runConvert(*convert, *to, *out); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *dstFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	dst, err := netblock.ParseIP(*dstFlag)
	if err != nil {
		log.Fatal(err)
	}

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Topology.Seed = *seed

	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sys.Prober.Traceroute(probe.VMRef{Cloud: *cloud, Region: *region}, dst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traceroute from %s to %s (status %s)\n", tr.Src, tr.Dst, statusName(tr.Status))
	seenBorder := false
	for i, h := range tr.Hops {
		if !h.Responsive() {
			fmt.Printf("%3d  *\n", i+1)
			continue
		}
		ann := sys.Registry.Annotate(h.Addr)
		label := describe(sys.Registry, ann)
		marker := ""
		if !seenBorder && ann.ASN != 0 && !sys.Registry.IsAmazon(ann) {
			marker = "  <-- CBI (candidate interconnection segment above)"
			seenBorder = true
		}
		name := sys.Registry.DNS[h.Addr]
		if name != "" {
			name = "  " + name
		}
		fmt.Printf("%3d  %-15s %8.3f ms  %s%s%s\n", i+1, h.Addr, h.RTTms, label, name, marker)
	}
	if !seenBorder {
		fmt.Println("(the probe never left the cloud)")
	}

	if *save != "" {
		f, err := os.OpenFile(*save, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		w, err := tracefile.NewWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		w.Write(tr)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved to %s\n", *save)
	}
}

// runConvert re-encodes src into the target format, preserving the
// completeness mark: a partial input stays a loadable partial output.
func runConvert(src, to, out string) error {
	if out == "" {
		return fmt.Errorf("-convert requires -o (output path)")
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var w *tracefile.Writer
	switch to {
	case "binary":
		w, err = tracefile.NewBinaryWriter(f)
	case "text":
		if strings.HasSuffix(out, ".gz") {
			w, err = tracefile.NewGzipWriter(f)
		} else {
			w, err = tracefile.NewWriter(f)
		}
	default:
		f.Close()
		return fmt.Errorf("-to %q: want text or binary", to)
	}
	if err != nil {
		f.Close()
		return err
	}
	sum, rerr := tracefile.ReplayFile(src, w.Sink())
	if rerr != nil {
		f.Close()
		os.Remove(out)
		return fmt.Errorf("read %s: %w", src, rerr)
	}
	if sum.Complete {
		err = w.Finish()
	} else {
		err = w.Close()
	}
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		os.Remove(out)
		return fmt.Errorf("write %s: %w", out, err)
	}
	state := "complete"
	if !sum.Complete {
		state = "partial"
	}
	fmt.Printf("%s: %d traces (%s) -> %s (%s)\n", src, sum.Traces, state, out, to)
	return nil
}

// runStat prints a tracefile's on-disk shape.
func runStat(path string) error {
	st, err := tracefile.StatFile(path)
	if err != nil {
		return fmt.Errorf("stat %s: %w", path, err)
	}
	state := "complete"
	if !st.Complete {
		state = "partial"
	}
	fmt.Printf("%s: %s, %s\n", path, st.Format, state)
	fmt.Printf("  records      %d\n", st.Records)
	fmt.Printf("  bytes        %d (%.2f bytes/trace)\n", st.Bytes, st.BytesPerTrace())
	fmt.Printf("  hops         %d (%d responsive)\n", st.Hops, st.ResponsiveHops)
	if st.Format == "binary" || st.Format == "gzip+binary" {
		fmt.Printf("  chunks       %d\n", st.Chunks)
		fmt.Printf("  dictionary   %d entries, %.1f%% hit rate\n", st.DictEntries, 100*st.DictHitRate())
	}
	return nil
}

func statusName(s probe.Status) string {
	switch s {
	case probe.StatusCompleted:
		return "completed"
	case probe.StatusGapLimit:
		return "gap-limit"
	case probe.StatusLoop:
		return "loop"
	}
	return "unknown"
}

func describe(reg *registry.Registry, ann registry.Annotation) string {
	switch {
	case ann.IXP >= 0 && ann.ASN != 0:
		return fmt.Sprintf("AS%-6d %-18s [IXP %s]", ann.ASN, ann.Org, reg.IXPs[ann.IXP].Name)
	case ann.IXP >= 0:
		return fmt.Sprintf("unknown member      [IXP %s]", reg.IXPs[ann.IXP].Name)
	case ann.ASN == 0:
		return "private/unknown"
	case ann.Source == registry.SourceWhois:
		return fmt.Sprintf("AS%-6d %-18s [whois-only]", ann.ASN, ann.Org)
	default:
		return fmt.Sprintf("AS%-6d %-18s", ann.ASN, ann.Org)
	}
}
