// Command tracedump issues a single traceroute in the simulated world and
// prints the annotated hop list — the scamper-plus-annotation view the
// paper's pipeline consumes. It is the debugging loupe for the forwarding
// plane: where a probe exits Amazon, which segment would be inferred as the
// interconnection, and how each hop resolves against the public datasets.
//
// Usage:
//
//	tracedump -dst 64.0.0.1 [-cloud amazon] [-region 0] [-scale small] [-seed N] [-save traces.txt]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cloudmap"
	"cloudmap/internal/netblock"
	"cloudmap/internal/probe"
	"cloudmap/internal/registry"
	"cloudmap/internal/tracefile"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper")
	seed := flag.Uint64("seed", 1, "generation seed")
	cloud := flag.String("cloud", "amazon", "probing cloud")
	region := flag.Int("region", 0, "probing region index")
	dstFlag := flag.String("dst", "", "destination address (required)")
	save := flag.String("save", "", "append the trace to this tracefile")
	flag.Parse()

	if *dstFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	dst, err := netblock.ParseIP(*dstFlag)
	if err != nil {
		log.Fatal(err)
	}

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Topology.Seed = *seed

	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sys.Prober.Traceroute(probe.VMRef{Cloud: *cloud, Region: *region}, dst)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traceroute from %s to %s (status %s)\n", tr.Src, tr.Dst, statusName(tr.Status))
	seenBorder := false
	for i, h := range tr.Hops {
		if !h.Responsive() {
			fmt.Printf("%3d  *\n", i+1)
			continue
		}
		ann := sys.Registry.Annotate(h.Addr)
		label := describe(sys.Registry, ann)
		marker := ""
		if !seenBorder && ann.ASN != 0 && !sys.Registry.IsAmazon(ann) {
			marker = "  <-- CBI (candidate interconnection segment above)"
			seenBorder = true
		}
		name := sys.Registry.DNS[h.Addr]
		if name != "" {
			name = "  " + name
		}
		fmt.Printf("%3d  %-15s %8.3f ms  %s%s%s\n", i+1, h.Addr, h.RTTms, label, name, marker)
	}
	if !seenBorder {
		fmt.Println("(the probe never left the cloud)")
	}

	if *save != "" {
		f, err := os.OpenFile(*save, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		w, err := tracefile.NewWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		w.Write(tr)
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved to %s\n", *save)
	}
}

func statusName(s probe.Status) string {
	switch s {
	case probe.StatusCompleted:
		return "completed"
	case probe.StatusGapLimit:
		return "gap-limit"
	case probe.StatusLoop:
		return "loop"
	}
	return "unknown"
}

func describe(reg *registry.Registry, ann registry.Annotation) string {
	switch {
	case ann.IXP >= 0 && ann.ASN != 0:
		return fmt.Sprintf("AS%-6d %-18s [IXP %s]", ann.ASN, ann.Org, reg.IXPs[ann.IXP].Name)
	case ann.IXP >= 0:
		return fmt.Sprintf("unknown member      [IXP %s]", reg.IXPs[ann.IXP].Name)
	case ann.ASN == 0:
		return "private/unknown"
	case ann.Source == registry.SourceWhois:
		return fmt.Sprintf("AS%-6d %-18s [whois-only]", ann.ASN, ann.Org)
	default:
		return fmt.Sprintf("AS%-6d %-18s", ann.ASN, ann.Org)
	}
}
