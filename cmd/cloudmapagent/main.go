// Command cloudmapagent is a remote probe agent: it builds the same
// simulated world as its controller (same scale, seed, and fault plan),
// then serves the dispatch lease protocol — GET /agent/v1/health heartbeats
// and POST /agent/v1/lease work leases — executing campaign chunks against
// its local probing plane and streaming the results back as CRC-framed
// binary tracefiles.
//
// Usage:
//
//	cloudmapagent [-scale small|medium|paper] [-seed N] [-workers N]
//	              [-addr 127.0.0.1:0] [-addr-file F] [-agent-id ID]
//	              [-fault-plan plan.json] [-agent-plan plan.json]
//
// The controller (cloudmapd -agents, or cloudmap with dispatch wired in)
// refuses to exchange work with an agent whose world fingerprint — the hash
// of the topology config and fault plan — differs from its own, so a
// mis-started agent degrades to "ignored", never to "wrong results".
//
// -agent-plan injects the deterministic agent-fault schedule (crashes,
// stalls, partitions; see internal/faults.AgentPlan) for chaos drills: a
// chaos crash exits the process with status 3 so a supervisor (or the
// smoke script) can observe it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cloudmap"
	"cloudmap/internal/dispatch"
	"cloudmap/internal/faults"
	"cloudmap/internal/obs"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper (must match the controller)")
	seed := flag.Uint64("seed", 1, "generation seed (must match the controller)")
	workers := flag.Int("workers", 0, "concurrently executing leases; <=0 uses all CPUs")
	addr := flag.String("addr", "127.0.0.1:0", "serve the agent protocol on this address (\":0\" picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	agentID := flag.String("agent-id", "", "agent name in logs, health documents, and chaos draws (default: agent-<pid>)")
	faultPlan := flag.String("fault-plan", "", "probe-side fault plan JSON (must match the controller; see testdata/faultplans)")
	agentPlan := flag.String("agent-plan", "", "agent chaos plan JSON: deterministic crashes, stalls, partitions (see testdata/agentplans)")
	flag.Parse()

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, medium, or paper)", *scale)
	}
	cfg.Topology.Seed = *seed
	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}

	id := *agentID
	if id == "" {
		id = fmt.Sprintf("agent-%d", os.Getpid())
	}
	logger := log.New(os.Stderr, "cloudmapagent: ", log.LstdFlags)

	var chaos *faults.AgentChaos
	if *agentPlan != "" {
		plan, err := faults.LoadAgentPlan(*agentPlan)
		if err != nil {
			log.Fatal(err)
		}
		chaos, err = plan.Bind(id)
		if err != nil {
			log.Fatal(err)
		}
		logger.Printf("agent %s: chaos plan %s armed", id, *agentPlan)
	}

	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fp := dispatch.Fingerprint(cfg.Topology, cfg.Faults)

	agent := dispatch.NewAgent(dispatch.AgentOptions{
		ID:          id,
		Prober:      sys.Prober,
		Fingerprint: fp,
		Workers:     *workers,
		Chaos:       chaos,
		Log:         logger,
		// Default Exit: os.Exit(3) — a chaos crash kills the real process.
	})

	srv, err := obs.ServeHandler(*addr, agent.Handler())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloudmapagent %s serving on http://%s (world %s)\n", id, srv.Addr(), fp)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	fmt.Fprintln(os.Stderr, "cloudmapagent: stopping")
	srv.Close()
}
