// Command cloudmapagent is a remote probe agent: it builds the same
// simulated world as its controller (same scale, seed, and fault plan),
// then serves the dispatch lease protocol — GET /agent/v1/health heartbeats
// and POST /agent/v1/lease work leases — executing campaign chunks against
// its local probing plane and streaming the results back as CRC-framed
// binary tracefiles.
//
// Usage:
//
//	cloudmapagent [-scale small|medium|paper] [-seed N] [-workers N]
//	              [-addr 127.0.0.1:0] [-addr-file F] [-agent-id ID]
//	              [-fault-plan plan.json] [-agent-plan plan.json]
//	              [-log-level info] [-debug-addr HOST:PORT]
//
// The agent's listener doubles as its admin plane: /metrics, /metrics.json,
// /progress, /logz, and /debug/pprof/ are served next to the lease routes,
// so every agent in a fleet is individually scrapeable. -debug-addr mounts
// the same admin plane on a second listener (for deployments where the
// lease port is firewalled away from operators).
//
// The controller (cloudmapd -agents, or cloudmap with dispatch wired in)
// refuses to exchange work with an agent whose world fingerprint — the hash
// of the topology config and fault plan — differs from its own, so a
// mis-started agent degrades to "ignored", never to "wrong results".
//
// -agent-plan injects the deterministic agent-fault schedule (crashes,
// stalls, partitions; see internal/faults.AgentPlan) for chaos drills: a
// chaos crash exits the process with status 3 so a supervisor (or the
// smoke script) can observe it.
//
// Shutdown is two-phase: the first SIGINT/SIGTERM begins a drain — new
// leases are refused with 503 while in-flight leases finish — and exits
// cleanly once the agent is idle; a second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudmap"
	"cloudmap/internal/dispatch"
	"cloudmap/internal/faults"
	"cloudmap/internal/metrics"
	"cloudmap/internal/obs"
	olog "cloudmap/internal/obs/log"
)

func main() {
	scale := flag.String("scale", "small", "topology scale: small, medium, or paper (must match the controller)")
	seed := flag.Uint64("seed", 1, "generation seed (must match the controller)")
	workers := flag.Int("workers", 0, "concurrently executing leases; <=0 uses all CPUs")
	addr := flag.String("addr", "127.0.0.1:0", "serve the agent protocol on this address (\":0\" picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	agentID := flag.String("agent-id", "", "agent name in logs, health documents, and chaos draws (default: agent-<pid>)")
	faultPlan := flag.String("fault-plan", "", "probe-side fault plan JSON (must match the controller; see testdata/faultplans)")
	agentPlan := flag.String("agent-plan", "", "agent chaos plan JSON: deterministic crashes, stalls, partitions (see testdata/agentplans)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, or error")
	debugAddr := flag.String("debug-addr", "", "serve a second admin plane (/metrics, /progress, pprof) on this address")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight leases on graceful shutdown")
	flag.Parse()

	level, err := olog.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := olog.New(os.Stderr, level)

	var cfg cloudmap.Config
	switch *scale {
	case "small":
		cfg = cloudmap.SmallConfig()
	case "medium":
		cfg = cloudmap.MediumConfig()
	case "paper":
		cfg = cloudmap.DefaultConfig()
	default:
		log.Fatalf("unknown scale %q (want small, medium, or paper)", *scale)
	}
	cfg.Topology.Seed = *seed
	if *faultPlan != "" {
		plan, err := faults.LoadPlan(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}

	id := *agentID
	if id == "" {
		id = fmt.Sprintf("agent-%d", os.Getpid())
	}

	var chaos *faults.AgentChaos
	if *agentPlan != "" {
		plan, err := faults.LoadAgentPlan(*agentPlan)
		if err != nil {
			log.Fatal(err)
		}
		chaos, err = plan.Bind(id)
		if err != nil {
			log.Fatal(err)
		}
		logger.With("agent").Info("chaos plan armed", "agent", id, "plan", *agentPlan)
	}

	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fp := dispatch.Fingerprint(cfg.Topology, cfg.Faults)

	reg := metrics.NewRegistry()
	prog := obs.NewProgress(reg)
	agent := dispatch.NewAgent(dispatch.AgentOptions{
		ID:          id,
		Prober:      sys.Prober,
		Fingerprint: fp,
		Workers:     *workers,
		Chaos:       chaos,
		Log:         logger,
		Metrics:     reg,
		Progress:    prog,
		// Default Exit: os.Exit(3) — a chaos crash kills the real process.
	})

	// One listener serves leases and the admin plane together; the agent's
	// /metrics, /progress, /logz, and pprof ride next to the lease routes.
	mux := obs.NewMux(reg, prog)
	agent.Mount(mux)
	mux.Handle("/logz", logger.Handler())

	srv, err := obs.ServeHandler(*addr, mux)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloudmapagent %s serving on http://%s (world %s)\n", id, srv.Addr(), fp)
	if *debugAddr != "" {
		dmux := obs.NewMux(reg, prog)
		dmux.Handle("/logz", logger.Handler())
		dsrv, err := obs.ServeHandler(*debugAddr, dmux)
		if err != nil {
			log.Fatal(err)
		}
		defer dsrv.Close()
		fmt.Printf("cloudmapagent %s debug plane on http://%s\n", id, dsrv.Addr())
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	// First signal: drain. Refuse new leases (the controller redispatches
	// them), let in-flight leases finish, then stop serving. A second
	// signal — or the drain timeout — aborts immediately.
	fmt.Fprintln(os.Stderr, "cloudmapagent: draining (signal again to abort)")
	agent.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "cloudmapagent: aborting")
		cancel()
	}()
	if err := agent.Drain(ctx); err != nil {
		logger.With("agent").Warn("drain aborted", "agent", id, "err", err)
		srv.Close()
		os.Exit(1)
	}
	srv.Shutdown(ctx)
	fmt.Fprintln(os.Stderr, "cloudmapagent: stopped")
}
