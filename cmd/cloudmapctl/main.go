// Command cloudmapctl queries a running cloudmapd.
//
// Usage:
//
//	cloudmapctl [-addr 127.0.0.1:7080] [-json] status
//	cloudmapctl [-addr ...] [-json] peerings [-as N] [-metro CODE] [-cbi IP]
//	cloudmapctl [-addr ...] [-json] watch [-since N]
//	cloudmapctl [-addr ...] [-json] fleet
//
// status prints the daemon's epoch, map size, and the last epoch's
// incremental-scheduling outcome (which stages re-ran, which hash-skipped).
// peerings prints the live map, optionally filtered to one AS, metro, or
// interface. watch replays the delta history after -since and then streams
// each new epoch's changes until interrupted. fleet prints per-agent health
// from the dispatch controller: state (healthy, penalty-box, lost),
// heartbeat age, lease accounting, the agent's self-reported telemetry, and
// its recent throughput. -json emits the server documents unformatted.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"

	"cloudmap/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7080", "cloudmapd address")
	asJSON := flag.Bool("json", false, "print raw JSON instead of tables")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cloudmapctl [-addr HOST:PORT] [-json] status|peerings|watch|fleet [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	base := "http://" + *addr
	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = runStatus(base, *asJSON)
	case "peerings":
		err = runPeerings(base, *asJSON, flag.Args()[1:])
	case "watch":
		err = runWatch(base, *asJSON, flag.Args()[1:])
	case "fleet":
		err = runFleet(base, *asJSON)
	default:
		log.Fatalf("unknown subcommand %q (want status, peerings, watch, or fleet)", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// get fetches path and decodes the JSON document into v (or copies it to
// stdout verbatim when raw).
func get(base, path string, raw bool, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	if raw {
		_, err := io.Copy(os.Stdout, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func runStatus(base string, raw bool) error {
	var st service.StatusReply
	if err := get(base, "/v1/status", raw, &st); err != nil || raw {
		return err
	}
	service.FormatStatus(os.Stdout, &st)
	return nil
}

func runFleet(base string, raw bool) error {
	var fl service.FleetReply
	if err := get(base, "/v1/fleet", raw, &fl); err != nil || raw {
		return err
	}
	service.FormatFleet(os.Stdout, &fl)
	return nil
}

func runPeerings(base string, raw bool, args []string) error {
	fs := flag.NewFlagSet("peerings", flag.ExitOnError)
	as := fs.Uint("as", 0, "only this peer AS")
	metro := fs.String("metro", "", "only this metro code")
	cbi := fs.String("cbi", "", "only this interface address")
	fs.Parse(args)
	q := url.Values{}
	if *as != 0 {
		q.Set("as", fmt.Sprint(*as))
	}
	if *metro != "" {
		q.Set("metro", *metro)
	}
	if *cbi != "" {
		q.Set("cbi", *cbi)
	}
	path := "/v1/peerings"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var reply service.PeeringsReply
	if err := get(base, path, raw, &reply); err != nil || raw {
		return err
	}
	fmt.Printf("epoch %d: %d peering(s)\n", reply.Epoch, len(reply.Peerings))
	service.FormatPeerings(os.Stdout, reply.Peerings)
	return nil
}

// runWatch consumes the daemon's SSE stream, printing each epoch's delta
// set as it lands, until the server closes the stream or we are killed.
func runWatch(base string, raw bool, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	since := fs.Uint64("since", 0, "replay recorded epochs after this one first")
	fs.Parse(args)
	resp, err := http.Get(fmt.Sprintf("%s/v1/watch?since=%d", base, *since))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("/v1/watch: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := strings.TrimPrefix(line, "data: ")
		if raw {
			fmt.Println(data)
			continue
		}
		var ed service.EpochDeltas
		if err := json.Unmarshal([]byte(data), &ed); err != nil {
			return fmt.Errorf("watch: bad event: %w", err)
		}
		service.FormatDeltas(os.Stdout, &ed)
	}
	return sc.Err()
}
