package cloudmap

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cloudmap/internal/pipeline"
	"cloudmap/internal/probe"
	"cloudmap/internal/tracefile"
)

// TestRunManifestMetricsJSON exercises the acceptance criterion for
// -metrics-out: the manifest marshals to valid JSON with one entry per
// declared stage carrying name, wall time, allocations, and counters.
func TestRunManifestMetricsJSON(t *testing.T) {
	rep := smallReport(t)

	var buf bytes.Buffer
	if err := rep.WriteManifestJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Version != manifestVersion || m.ConfigHash == "" {
		t.Fatalf("manifest header incomplete: %+v", m)
	}

	names := StageNames()
	if len(m.Stages) != len(names) {
		t.Fatalf("manifest has %d stage entries, pipeline declares %d", len(m.Stages), len(names))
	}
	for i, st := range m.Stages {
		if st.Name != names[i] {
			t.Errorf("stage %d is %q, want %q", i, st.Name, names[i])
		}
		if st.Status != pipeline.StatusOK && st.Status != pipeline.StatusSkipped {
			t.Errorf("stage %s status %q on a clean run", st.Name, st.Status)
		}
		if st.Status == pipeline.StatusOK && (st.WallMS < 0 || st.Mallocs == 0) {
			t.Errorf("stage %s telemetry empty: wall=%v mallocs=%d", st.Name, st.WallMS, st.Mallocs)
		}
	}

	byName := make(map[string]pipeline.StageResult, len(m.Stages))
	for _, st := range m.Stages {
		byName[st.Name] = st
	}
	camp := byName["campaign"]
	if camp.Counters["traces"] == 0 || camp.Counters["targets"] == 0 {
		t.Errorf("campaign counters empty: %+v", camp.Counters)
	}
	if camp.Histograms["hops-per-trace"].Count != camp.Counters["traces"] {
		t.Errorf("hop histogram count %d != traces %d",
			camp.Histograms["hops-per-trace"].Count, camp.Counters["traces"])
	}
	ev := byName["evaluate"]
	for _, k := range []string{"abis", "cbis", "peer_ases"} {
		if ev.Gauges[k] <= 0 {
			t.Errorf("evaluate gauge %s = %v", k, ev.Gauges[k])
		}
	}
	if m.Summary["peer_ases"] != ev.Gauges["peer_ases"] {
		t.Errorf("summary/gauge mismatch: %v vs %v", m.Summary["peer_ases"], ev.Gauges["peer_ases"])
	}
}

// TestCancelMidCampaignLeavesPartialCheckpoint is the satellite cancellation
// contract: cancelling mid-campaign returns promptly with an error wrapping
// context.Canceled, and the interrupted checkpoint on disk is loadable but
// scans as incomplete.
func TestCancelMidCampaignLeavesPartialCheckpoint(t *testing.T) {
	cfg := SmallConfig()
	cfg.Topology.Seed = 42

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	cfg.RecordTraces = func(probe.Trace) {
		if seen++; seen == 200 {
			cancel()
		}
	}

	res, rep, err := RunPipeline(ctx, nil, cfg, RunOptions{CheckpointDir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrapped context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if rep == nil {
		t.Fatal("cancelled run returned no report")
	}
	var campaign *pipeline.StageResult
	for i := range rep.Manifest.Stages {
		if rep.Manifest.Stages[i].Name == "campaign" {
			campaign = &rep.Manifest.Stages[i]
		}
	}
	if campaign == nil || campaign.Status != pipeline.StatusFailed {
		t.Fatalf("campaign stage not recorded as failed: %+v", campaign)
	}

	// The partial checkpoint replays but is marked incomplete.
	sum, err := tracefile.ScanFile(filepath.Join(dir, "campaign.traces.bin"))
	if err != nil {
		t.Fatalf("partial checkpoint unreadable: %v", err)
	}
	if sum.Complete {
		t.Fatal("interrupted checkpoint claims completeness")
	}
	if sum.Traces == 0 {
		t.Fatal("interrupted checkpoint holds no traces")
	}

	// The manifest on disk records the failure too.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("manifest not written on failure: %v", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("stored manifest invalid: %v", err)
	}

	// Resuming over the partial checkpoint re-probes: the checkpoint is
	// incomplete, so the Resume hook must decline it.
	if testing.Short() {
		t.Skip("re-probe comparison skipped in -short mode")
	}
	cfg2 := SmallConfig()
	cfg2.Topology.Seed = 42
	res2, rep2, err := RunPipeline(context.Background(), nil, cfg2, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep2.Manifest.Stages {
		if st.Name == "campaign" {
			if st.Status != pipeline.StatusOK {
				t.Fatalf("campaign over a partial checkpoint: status %q, want re-probed ok", st.Status)
			}
			if st.Counters["checkpoint-partial"] != 1 {
				t.Errorf("partial-checkpoint detection not recorded: %+v", st.Counters)
			}
		}
	}

	// And the re-probed run matches a run that was never interrupted.
	cfg3 := SmallConfig()
	cfg3.Topology.Seed = 42
	ref, err := Run(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report() != ref.Report() {
		t.Fatal("re-probed run diverged from an uninterrupted run")
	}
}

// TestInterruptAfterCampaignResumes is the headline checkpoint/resume
// acceptance criterion: a run killed after the campaign stage (mid-expansion)
// resumes from the stored round-1 traces and produces a byte-identical final
// report.
func TestInterruptAfterCampaignResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run checkpoint test skipped in -short mode")
	}
	cfg := SmallConfig()
	cfg.Topology.Seed = 99

	// Reference: uninterrupted run.
	ref, refRep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var round1, round2 int64
	for _, st := range refRep.Manifest.Stages {
		switch st.Name {
		case "campaign":
			round1 = st.Counters["traces"]
		case "expansion":
			round2 = st.Counters["traces"]
		}
	}
	if round1 == 0 || round2 < 100 {
		t.Fatalf("unexpected round sizes: %d / %d", round1, round2)
	}

	// Interrupted run: cancel once expansion probing is under way.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfgB := SmallConfig()
	cfgB.Topology.Seed = 99
	var seen int64
	cfgB.RecordTraces = func(probe.Trace) {
		if seen++; seen == round1+50 {
			cancel()
		}
	}
	_, repB, err := RunPipeline(ctx, nil, cfgB, RunOptions{CheckpointDir: dir})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want wrapped context.Canceled", err)
	}
	for _, st := range repB.Manifest.Stages {
		if st.Name == "campaign" && st.Status != pipeline.StatusOK {
			t.Fatalf("campaign should have completed before the interrupt: %+v", st)
		}
	}
	sum, err := tracefile.ScanFile(filepath.Join(dir, "campaign.traces.bin"))
	if err != nil || !sum.Complete {
		t.Fatalf("campaign checkpoint not complete: %+v, %v", sum, err)
	}

	// Resume: round 1 replays from the checkpoint, round 2 re-probes.
	cfgC := SmallConfig()
	cfgC.Topology.Seed = 99
	resC, repC, err := RunPipeline(context.Background(), nil, cfgC, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range repC.Manifest.Stages {
		if st.Name == "campaign" {
			if st.Status != pipeline.StatusResumed {
				t.Fatalf("campaign status %q, want resumed", st.Status)
			}
			if st.Counters["replayed"] != round1 {
				t.Errorf("replayed %d traces, want %d", st.Counters["replayed"], round1)
			}
		}
	}
	if resC.Report() != ref.Report() {
		t.Fatal("resumed run diverged from the uninterrupted run")
	}

	// A config change invalidates the checkpoint dir.
	cfgD := SmallConfig()
	cfgD.Topology.Seed = 100
	if _, _, err := RunPipeline(context.Background(), nil, cfgD, RunOptions{CheckpointDir: dir, Resume: true}); err == nil {
		t.Fatal("resume with a different config accepted")
	}
}

// TestRunOptionsValidation covers the option-surface error paths.
func TestRunOptionsValidation(t *testing.T) {
	if _, _, err := RunPipeline(context.Background(), nil, SmallConfig(), RunOptions{Resume: true}); err == nil {
		t.Fatal("Resume without CheckpointDir accepted")
	}
}

// TestConfigHashStability pins the hash semantics resume depends on: the
// machine-dependent and output-invariant fields must not affect the hash,
// everything else must.
func TestConfigHashStability(t *testing.T) {
	base := SmallConfig()
	h := configHash(base)

	same := base
	same.Workers = 17
	same.RecordTraces = func(probe.Trace) {}
	if configHash(same) != h {
		t.Error("Workers/RecordTraces changed the config hash")
	}

	diff := base
	diff.Topology.Seed++
	if configHash(diff) == h {
		t.Error("seed change did not change the config hash")
	}
}

// TestTornBinaryCheckpointReprobes is the binary-format crash-chaos leg: a
// checkpoint cut mid-frame (the file a SIGKILLed run leaves behind) must
// degrade to live re-probing through the checkpoint-truncated path, exactly
// like torn gzip text, and the re-probed run must match an uninterrupted one.
func TestTornBinaryCheckpointReprobes(t *testing.T) {
	cfg := SmallConfig()
	cfg.Topology.Seed = 7
	dir := t.TempDir()
	if _, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "campaign.traces.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-frame: drop the trailer plus a few payload bytes so
	// neither the index nor a clean chunk boundary survives.
	if err := os.WriteFile(path, raw[:len(raw)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tracefile.ScanFile(path); !errors.Is(err, tracefile.ErrTruncated) {
		t.Fatalf("torn checkpoint scan = %v, want ErrTruncated", err)
	}

	cfg2 := SmallConfig()
	cfg2.Topology.Seed = 7
	res, rep, err := RunPipeline(context.Background(), nil, cfg2, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.Manifest.Stages {
		if st.Name == "campaign" {
			if st.Status != pipeline.StatusOK {
				t.Fatalf("campaign over a torn checkpoint: status %q, want re-probed ok", st.Status)
			}
			if st.Counters["checkpoint-truncated"] != 1 {
				t.Errorf("truncation not recorded: %+v", st.Counters)
			}
		}
	}
	ref, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report() != ref.Report() {
		t.Fatal("re-probed run diverged from an uninterrupted run")
	}
	// The re-probe overwrote the torn file with a complete checkpoint.
	if sum, err := tracefile.ScanFile(path); err != nil || !sum.Complete {
		t.Fatalf("checkpoint not healed after re-probe: %+v, %v", sum, err)
	}
}

// TestLegacyTextCheckpointResumes: a checkpoint directory written by a
// pre-v2 run (gzip text under the old *.traces.gz names) still resumes.
func TestLegacyTextCheckpointResumes(t *testing.T) {
	cfg := SmallConfig()
	cfg.Topology.Seed = 21
	dir := t.TempDir()
	res0, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Downgrade both checkpoints to the legacy encoding and name.
	for _, stage := range []string{"campaign", "expansion"} {
		binPath := filepath.Join(dir, stage+".traces.bin")
		gzPath := filepath.Join(dir, stage+".traces.gz")
		w, err := tracefile.Create(gzPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tracefile.ReplayFile(binPath, w.Sink()); err != nil {
			t.Fatal(err)
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(binPath); err != nil {
			t.Fatal(err)
		}
	}
	cfg2 := SmallConfig()
	cfg2.Topology.Seed = 21
	res, rep, err := RunPipeline(context.Background(), nil, cfg2, RunOptions{CheckpointDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.Manifest.Stages {
		if st.Name == "campaign" || st.Name == "expansion" {
			if st.Status != pipeline.StatusResumed {
				t.Fatalf("stage %s over a legacy checkpoint: status %q, want resumed", st.Name, st.Status)
			}
		}
	}
	if res.Report() != res0.Report() {
		t.Fatal("legacy-checkpoint resume diverged from the original run")
	}
}

// TestResumeWorkerInvariance is the parallel-decode acceptance criterion:
// resuming the same checkpoint at workers=1 and workers=8 produces
// byte-identical reports (chunks decode concurrently but deliver in order).
func TestResumeWorkerInvariance(t *testing.T) {
	cfg := SmallConfig()
	cfg.Topology.Seed = 33
	dir := t.TempDir()
	ref, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		cfgW := SmallConfig()
		cfgW.Topology.Seed = 33
		cfgW.Workers = workers
		res, rep, err := RunPipeline(context.Background(), nil, cfgW, RunOptions{CheckpointDir: dir, Resume: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, st := range rep.Manifest.Stages {
			if st.Name == "campaign" && st.Status != pipeline.StatusResumed {
				t.Fatalf("workers=%d: campaign status %q, want resumed", workers, st.Status)
			}
		}
		if res.Report() != ref.Report() {
			t.Fatalf("workers=%d: resumed report diverged from the fresh run", workers)
		}
	}
}
