package cloudmap

// Benches for the staged runner itself: what the DAG adds over the
// monolithic run (per-stage attribution) and what resume saves (replaying
// checkpointed tracefiles instead of re-probing the campaigns).

import (
	"context"
	"path/filepath"
	"testing"

	"cloudmap/internal/metrics"
	"cloudmap/internal/obs"
)

// BenchmarkPipelineRun is the full staged run; the per-stage wall clock of
// the two probing rounds is reported so regressions attribute to a stage.
func BenchmarkPipelineRun(b *testing.B) {
	cfg := SmallConfig()
	for i := 0; i < b.N; i++ {
		_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, st := range rep.Manifest.Stages {
				switch st.Name {
				case "campaign", "expansion":
					b.ReportMetric(st.WallMS, st.Name+"-ms")
				}
			}
		}
	}
}

// BenchmarkPipelineObserved is BenchmarkPipelineRun with full observability
// on — journal, Chrome trace, and live progress — so the instrumentation
// overhead is the delta against BenchmarkPipelineRun (the ISSUE budget is
// <5% on the campaign).
func BenchmarkPipelineObserved(b *testing.B) {
	cfg := SmallConfig()
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		reg := metrics.NewRegistry()
		_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{
			Metrics:     reg,
			JournalPath: filepath.Join(dir, "journal.jsonl"),
			TracePath:   filepath.Join(dir, "trace.json"),
			Progress:    obs.NewProgress(reg),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, st := range rep.Manifest.Stages {
				switch st.Name {
				case "campaign", "expansion":
					b.ReportMetric(st.WallMS, st.Name+"-ms")
				}
			}
			var events int64
			for _, n := range rep.Manifest.Trace.Spans {
				events += n
			}
			b.ReportMetric(float64(events), "journal-events")
		}
	}
}

// BenchmarkPipelineResume replays checkpointed probing rounds instead of
// probing: the headline saving of checkpoint/resume.
func BenchmarkPipelineResume(b *testing.B) {
	cfg := SmallConfig()
	dir := b.TempDir()
	if _, _, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{CheckpointDir: dir, Resume: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, st := range rep.Manifest.Stages {
				if st.Name == "campaign" {
					b.ReportMetric(st.WallMS, "replay-ms")
					b.ReportMetric(float64(st.Counters["replayed"]), "traces")
				}
			}
		}
	}
}
