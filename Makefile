GO ?= go

.PHONY: build test check bench fuzz chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: vet + build + race tests + fuzz smoke (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Chaos smoke: the fault-injection acceptance tests — pinning precision
# holds under the moderate plan, manifests record the degradation, and a
# same-seed+same-plan replay is byte-identical.
chaos:
	$(GO) test -run 'TestChaos' -v -timeout 10m .

fuzz:
	sh scripts/check.sh 30
