GO ?= go

.PHONY: build test check bench fuzz chaos hygiene crash agent-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: vet + build + race tests + fuzz smoke (see scripts/check.sh).
check:
	sh scripts/check.sh

# Pipeline benchmarks; emits BENCH_pipeline.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# Chaos smoke: the fault-injection acceptance tests — pinning precision
# holds under the moderate plan, manifests record the degradation, and a
# same-seed+same-plan replay is byte-identical.
chaos:
	$(GO) test -run 'TestChaos' -v -timeout 10m .

# Hygiene smoke: the dataset-hygiene acceptance tests — clean runs
# round-trip the datasets byte-identically, the moderate dirty plan
# degrades coverage but not precision, manifests carry the quarantine
# accounting, and replays are byte-identical at any worker count.
hygiene:
	$(GO) test ./internal/datasets
	$(GO) test -run 'TestHygiene|TestDegradationReportDatasetOnly|TestConfigHashDirtyPlan' -v -timeout 10m .

# Crash-recovery smoke: SIGKILL cloudmapd mid-epoch, restart it on the
# same -state-dir, and verify it recovers the map, continues the journal
# gaplessly, and still shuts down cleanly (see scripts/crash_smoke.sh;
# also part of 'make check').
crash:
	sh scripts/crash_smoke.sh

# Distributed-probing smoke: run cloudmapd against a real three-agent
# fleet, SIGKILL one cloudmapagent mid-chunk, and verify /v1/peerings is
# byte-identical to a local-only run (see scripts/agent_smoke.sh; also
# part of 'make check').
agent-smoke:
	sh scripts/agent_smoke.sh

fuzz:
	sh scripts/check.sh 30
