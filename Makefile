GO ?= go

.PHONY: build test check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: vet + build + race tests + fuzz smoke (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

fuzz:
	sh scripts/check.sh 30
