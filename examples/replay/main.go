// Replay: record a probing campaign to a tracefile, then run border
// inference purely from the file — no simulator in the loop. This mirrors
// the paper's actual workflow (probe once for 16 days, analyse the warts
// archives many times) and demonstrates that the pipeline consumes nothing
// but traces and public datasets.
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cloudmap"
	"cloudmap/internal/border"
	"cloudmap/internal/probe"
	"cloudmap/internal/tracefile"
)

func main() {
	cfg := cloudmap.SmallConfig()
	cfg.Topology.Seed = 5
	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	path := filepath.Join(os.TempDir(), "cloudmap-replay.traces")
	defer os.Remove(path)

	// Phase 1: the measurement campaign, recorded to disk while a live
	// inference consumes it (tracefile.Tee fans the stream out).
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := tracefile.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	live := border.New(sys.Registry, "amazon")
	targets := probe.Round1Targets(sys.Topology, probe.Round1Options{})
	fmt.Printf("phase 1: probing %d targets from 15 regions, recording to %s\n", len(targets), path)
	if err := sys.Prober.Campaign(sys.Prober.VMs("amazon"), targets, tracefile.Tee(w.Sink(), live.Consume)); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("  recorded %d traces (%.1f MB)\n", live.Stats.Traces, float64(st.Size())/1e6)

	// Phase 2: a fresh inference run fed exclusively from the file.
	replayed := border.New(sys.Registry, "amazon")
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	fmt.Println("phase 2: replaying the file into a fresh inference (no simulator)")
	if err := tracefile.Read(rf, replayed.Consume); err != nil {
		log.Fatal(err)
	}

	// The two runs must agree exactly.
	la, lc := live.BreakdownABIs(), live.BreakdownCBIs()
	ra, rc := replayed.BreakdownABIs(), replayed.BreakdownCBIs()
	fmt.Printf("  live:     %d ABIs, %d CBIs, %d peer ASes\n", la.Total, lc.Total, len(live.PeerASNs()))
	fmt.Printf("  replayed: %d ABIs, %d CBIs, %d peer ASes\n", ra.Total, rc.Total, len(replayed.PeerASNs()))
	if la.Total != ra.Total || lc.Total != rc.Total {
		log.Fatal("replay mismatch: the file does not carry everything the inference needs")
	}
	fmt.Println("replay is bit-identical: the pipeline needs only traces + public datasets.")
}
