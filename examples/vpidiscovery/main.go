// VPI discovery: walk through §7.1's multi-cloud overlap method step by
// step — build the target pool from Amazon's inferred CBIs, probe it from
// each foreign cloud, and intersect the resulting border views — then check
// the detections against ground truth (the evaluation privilege the paper
// never had).
//
//	go run ./examples/vpidiscovery
package main

import (
	"fmt"
	"log"

	"cloudmap"
	"cloudmap/internal/border"
	"cloudmap/internal/model"
	"cloudmap/internal/probe"
	"cloudmap/internal/vpi"
)

func main() {
	cfg := cloudmap.SmallConfig()
	cfg.Topology.Seed = 7
	sys, err := cloudmap.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: Amazon-side border inference (rounds 1+2), as in §4.
	fmt.Println("step 1: inferring Amazon's borders from its 15 regions...")
	inf := border.New(sys.Registry, "amazon")
	vms := sys.Prober.VMs("amazon")
	if err := sys.Prober.Campaign(vms, probe.Round1Targets(sys.Topology, probe.Round1Options{}), inf.Consume); err != nil {
		log.Fatal(err)
	}
	inf.BeginRound2()
	if err := sys.Prober.Campaign(vms, probe.ExpansionTargets(inf.CandidateCBIs()), inf.Consume); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d CBIs inferred\n", len(inf.CandidateCBIs()))

	// Step 2: build the §7.1 target pool — non-IXP CBIs, their +1
	// neighbours, and the destinations that revealed them.
	pool := vpi.Pool(inf)
	fmt.Printf("step 2: target pool has %d addresses\n", len(pool))

	// Step 3: probe from the other clouds and intersect.
	fmt.Println("step 3: probing the pool from microsoft, google, ibm, oracle...")
	res, err := vpi.Detect(sys.Prober, sys.Registry, inf, []string{"microsoft", "google", "ibm", "oracle"})
	if err != nil {
		log.Fatal(err)
	}
	for _, cloud := range res.Order {
		fmt.Printf("  %-10s pairwise overlap: %4d CBIs; cumulative: %4d\n",
			cloud, len(res.Pairwise[cloud]), res.Cumulative[cloud])
	}
	fmt.Printf("  => %d of %d non-IXP CBIs (%.1f%%) ride on VPIs (lower bound)\n",
		len(res.VPICBIs), res.AmazonNonIXPCBIs,
		100*float64(len(res.VPICBIs))/float64(res.AmazonNonIXPCBIs))

	// Step 4 (evaluation only): check against ground truth.
	tp := sys.Topology
	truePositives, falsePositives := 0, 0
	for addr := range res.VPICBIs {
		ifc, ok := tp.IfaceAt(addr)
		if !ok {
			falsePositives++
			continue
		}
		isVPIPort := false
		for i := range tp.Links {
			l := &tp.Links[i]
			if l.PeerIface == ifc && tp.Peerings[l.Peering].Kind == model.PeeringVPI {
				isVPIPort = true
				break
			}
		}
		if isVPIPort {
			truePositives++
		} else {
			falsePositives++
		}
	}
	fmt.Printf("step 4: ground truth check: %d true VPI ports, %d false positives\n",
		truePositives, falsePositives)
	fmt.Println("\nnote: single-cloud VPIs are invisible to this method by design —")
	fmt.Println("the paper's count is a lower bound, and so is this one.")
}
