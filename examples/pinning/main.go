// Pinning: explore §6's geolocation machinery — which anchor families
// contribute what, how far the co-presence rules propagate, how the §6.2
// cross-validation scores, and (evaluation-only) how the pins compare with
// ground truth. Finishes with an anchor-family ablation.
//
//	go run ./examples/pinning
package main

import (
	"fmt"
	"log"

	"cloudmap"
	"cloudmap/internal/pinning"
)

func main() {
	cfg := cloudmap.SmallConfig()
	cfg.Topology.Seed = 11
	cfg.SkipBdrmap = true

	res, err := cloudmap.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	p := res.Pinning

	fmt.Println("anchor families (exclusive contribution):")
	for _, src := range []string{"dns", "ixp", "metro", "native"} {
		fmt.Printf("  %-7s %5d anchors\n", src, p.Exclusive[src])
	}
	fmt.Println("co-presence propagation:")
	fmt.Printf("  alias-set rule pinned  %5d interfaces\n", p.Exclusive["alias"])
	fmt.Printf("  min-RTT rule pinned    %5d interfaces\n", p.Exclusive["min-rtt"])
	fmt.Printf("  converged in %d rounds; %d conflicts skipped; %d inconsistent anchors removed\n",
		p.Rounds, p.PropagationConflicts, p.ConflictingAnchors)
	fmt.Printf("coverage: %.1f%% at metro level; +%d interfaces at region level (%.1f%% total)\n",
		100*float64(len(p.Metro))/float64(p.TotalIfaces), p.RegionPinned,
		100*float64(len(p.Metro)+p.RegionPinned)/float64(p.TotalIfaces))

	cv := res.PinningCV
	fmt.Printf("\n§6.2 cross-validation (%d folds, 70/30): precision %.2f%%, recall %.2f%%\n",
		cv.Folds, 100*cv.Precision, 100*cv.Recall)

	// Ground truth comparison — only possible in simulation.
	tp := res.System.Topology
	correct, wrong, unknown := p.Accuracy(func(addr cloudmap.IP) (cloudmap.MetroID, bool) {
		ifc, ok := tp.IfaceAt(addr)
		if !ok {
			return 0, false
		}
		return tp.IfaceMetro(ifc), true
	})
	fmt.Printf("ground truth: %d pins correct, %d wrong, %d unknowable (%.2f%% accuracy)\n",
		correct, wrong, unknown, 100*float64(correct)/float64(correct+wrong))

	// Ablation: drop one anchor family at a time and measure coverage.
	fmt.Println("\nanchor-family ablation (coverage without each family):")
	sys := res.System
	for _, tc := range []struct {
		name    string
		disable func(*pinning.Options)
	}{
		{"dns", func(o *pinning.Options) { o.DisableDNS = true }},
		{"ixp", func(o *pinning.Options) { o.DisableIXP = true }},
		{"metro", func(o *pinning.Options) { o.DisableMetro = true }},
		{"native", func(o *pinning.Options) { o.DisableNative = true }},
	} {
		opts := pinning.DefaultOptions()
		tc.disable(&opts)
		ablated := pinning.Run(res.Verified, res.Border, sys.Registry, sys.Prober, res.Aliases, opts)
		fmt.Printf("  without %-7s %.1f%% metro coverage (full: %.1f%%)\n",
			tc.name, 100*float64(len(ablated.Metro))/float64(ablated.TotalIfaces),
			100*float64(len(p.Metro))/float64(p.TotalIfaces))
	}
}
