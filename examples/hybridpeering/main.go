// Hybrid peering: explore §7.2-7.3 — the six peering groups, the hybrid
// combinations individual ASes maintain, what hides from BGP, and the
// Direct-Connect DNS evidence that even "non-virtual" private peerings are
// often VPIs.
//
//	go run ./examples/hybridpeering
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"cloudmap"
)

func main() {
	cfg := cloudmap.SmallConfig()
	cfg.Topology.Seed = 23
	cfg.SkipBdrmap = true

	res, err := cloudmap.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := res.Groups

	fmt.Println("peering groups (Table 5):")
	for _, name := range []string{"Pb-nB", "Pb-B", "Pr-nB-V", "Pr-nB-nV", "Pr-B-nV", "Pr-B-V"} {
		r := g.Rows[name]
		fmt.Printf("  %-9s %4d ASes %5d CBIs %5d ABIs\n", name, r.ASes, r.CBIs, r.ABIs)
	}

	fmt.Println("\nhybrid combinations (Table 6):")
	for _, c := range g.Combos {
		bar := strings.Repeat("#", 1+c.ASNs*40/maxCombo(g.Combos))
		fmt.Printf("  %-40s %5d %s\n", c.Combo, c.ASNs, bar)
	}

	fmt.Printf("\nhidden from conventional measurement: %d of %d peerings (%.1f%%)\n",
		g.HiddenPeerings, g.TotalPeerings, 100*g.HiddenShare)
	fmt.Printf("BGP shows %d Amazon peerings; the pipeline found %d beyond BGP\n",
		g.BGPReported, g.BeyondBGP)
	fmt.Printf("Direct-Connect DNS evidence on 'non-virtual' private CBIs: %d dx names, %d VLAN tags\n",
		g.DXNames, g.VLANNames)
	fmt.Println("(the paper takes these names as proof that part of Pr-nB-nV is virtual too)")

	// Per-feature view of how the groups differ (Fig. 6's intent).
	fmt.Println("\nmedian customer-cone size (/24s in BGP) per group:")
	type kv struct {
		group  string
		median float64
	}
	var rows []kv
	for group, feats := range g.Fig6 {
		rows = append(rows, kv{group, feats["bgp24"].Median})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].median > rows[j].median })
	for _, r := range rows {
		fmt.Printf("  %-9s %10.0f\n", r.group, r.median)
	}
	fmt.Println("\ntransit-heavy groups (Pr-B-*) dwarf the edge groups, matching Fig. 6's top row.")
}

func maxCombo(combos []cloudmap.ComboCount) int {
	m := 1
	for _, c := range combos {
		if c.ASNs > m {
			m = c.ASNs
		}
	}
	return m
}
