// Quickstart: run the complete reproduction pipeline on a test-sized world
// and print the headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudmap"
)

func main() {
	// SmallConfig simulates a ~150-peer Amazon fabric; DefaultConfig is the
	// paper-comparable ~3.5k-peer scale.
	cfg := cloudmap.SmallConfig()
	cfg.Topology.Seed = 42

	res, err := cloudmap.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("How Cloud Traffic Goes Hiding — quickstart")
	fmt.Println()

	// The paper's central quantities, straight off the result.
	abis := res.Border.BreakdownABIs()
	cbis := res.Border.BreakdownCBIs()
	fmt.Printf("inferred border interfaces: %d Amazon-side (ABIs), %d client-side (CBIs)\n", abis.Total, cbis.Total)
	fmt.Printf("peer ASes discovered:       %d\n", res.Groups.PeerASes)
	fmt.Printf("visible in public BGP:      %d (coverage of BGP view: %.0f%%)\n",
		res.Groups.BGPReported, res.Groups.CoveragePct)
	fmt.Printf("hidden peerings:            %.1f%% (virtual or invisible in BGP)\n", 100*res.Groups.HiddenShare)
	fmt.Printf("VPIs detected by overlap:   %d CBIs (%.1f%% of non-IXP CBIs)\n",
		len(res.VPI.VPICBIs), 100*float64(len(res.VPI.VPICBIs))/float64(res.VPI.AmazonNonIXPCBIs))
	fmt.Printf("pinned to a metro:          %.1f%% of border interfaces\n",
		100*float64(len(res.Pinning.Metro))/float64(res.Pinning.TotalIfaces))
	fmt.Println()

	// The full paper-style report (every table and figure) is one call:
	fmt.Println("run res.Report() for the full set of tables and figures;")
	fmt.Println("here is Table 5, the peering-type breakdown:")
	fmt.Println()
	for _, group := range []string{"Pb-nB", "Pb-B", "Pr-nB-V", "Pr-nB-nV", "Pr-B-nV", "Pr-B-V"} {
		row := res.Groups.Rows[group]
		fmt.Printf("  %-9s %4d ASes  %5d CBIs  %5d ABIs\n", group, row.ASes, row.CBIs, row.ABIs)
	}
}
