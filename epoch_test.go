package cloudmap

import (
	"context"
	"testing"

	"cloudmap/internal/pipeline"
)

func epochStatuses(rep *EpochReport) map[string]pipeline.Status {
	out := map[string]pipeline.Status{}
	for _, sr := range rep.Stages {
		out[sr.Name] = sr.Status
	}
	return out
}

// An unchanged world must hash-skip the entire pipeline on the second
// epoch: same registry, same config — every input hash matches.
func TestSessionUnchangedWorldSkipsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run skipped in -short mode")
	}
	cfg := SmallConfig()
	cfg.SkipBdrmap = true
	s, err := NewSession(cfg, SessionOptions{CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res1, rep1, err := s.RunEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Epoch != 1 || s.Epoch() != 1 {
		t.Fatalf("epoch = %d/%d, want 1", rep1.Epoch, s.Epoch())
	}
	if n := len(rep1.StagesRun()); n < 10 {
		t.Fatalf("first epoch ran %d stages: %v", n, rep1.StagesRun())
	}
	if res1.Verified == nil || len(res1.Verified.CBIs) == 0 {
		t.Fatal("first epoch produced no verified CBIs")
	}

	res2, rep2, err := s.RunEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", rep2.Epoch)
	}
	for _, sr := range rep2.Stages {
		switch sr.Name {
		case "bdrmap": // Skip hook (SkipBdrmap), not the hash scheduler
			if sr.Status != pipeline.StatusSkipped {
				t.Errorf("bdrmap status = %s", sr.Status)
			}
		default:
			if sr.Status != pipeline.StatusSkippedUnchanged {
				t.Errorf("%s status = %s, want %s", sr.Name, sr.Status, pipeline.StatusSkippedUnchanged)
			}
		}
	}
	// The retained result is the same live view, not a recomputed one.
	if res2.Verified != res1.Verified {
		t.Error("hash-skipped epoch rebuilt the verified result")
	}
	if len(rep2.Summary) == 0 {
		t.Error("summary lost across a fully-skipped epoch")
	}
}

// Hash-skips must never outlive a failed or degraded run: a stage that
// re-ran and failed clears its remembered hash.
func TestSessionReportEvenOnCancel(t *testing.T) {
	cfg := SmallConfig()
	cfg.SkipBdrmap = true
	s, err := NewSession(cfg, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := s.RunEpoch(ctx)
	if err == nil {
		t.Fatal("cancelled epoch reported success")
	}
	if rep == nil || rep.Epoch != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// Nothing completed cleanly, so a retry must re-run from the top.
	if _, rep2, err := s.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	} else if n := len(rep2.StagesSkipped()); n != 0 {
		t.Fatalf("epoch after cancelled epoch hash-skipped %d stages: %v", n, rep2.StagesSkipped())
	}
}
