package cloudmap

import (
	"context"
	"sync"
	"testing"

	"cloudmap/internal/geo"
)

var (
	runOnce sync.Once
	runRes  *Result
	runRep  *RunReport
	runErr  error
)

// smallRun executes the full pipeline once for the whole test binary.
func smallRun(t *testing.T) *Result {
	t.Helper()
	runOnce.Do(func() {
		runRes, runRep, runErr = RunPipeline(context.Background(), nil, SmallConfig(), RunOptions{})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return runRes
}

// smallReport returns the RunReport of the shared small run.
func smallReport(t *testing.T) *RunReport {
	t.Helper()
	smallRun(t)
	return runRep
}

func TestPipelineEndToEnd(t *testing.T) {
	res := smallRun(t)
	if res.Border == nil || res.Verified == nil || res.Pinning == nil || res.VPI == nil || res.Groups == nil || res.Graph == nil || res.Bdrmap == nil {
		t.Fatal("pipeline stage missing from result")
	}
}

func TestTable1Shape(t *testing.T) {
	res := smallRun(t)
	r1a, r1c := res.Round1ABIs, res.Round1CBIs
	r2a, r2c := res.Border.BreakdownABIs(), res.Border.BreakdownCBIs()
	if r1c.Total == 0 || r2c.Total == 0 {
		t.Fatal("no CBIs")
	}
	// Expansion grows CBIs noticeably, ABIs barely (§4.2).
	if r2c.Total <= r1c.Total {
		t.Errorf("expansion did not grow CBIs: %d -> %d", r1c.Total, r2c.Total)
	}
	if r2a.Total > r1a.Total*3/2+5 {
		t.Errorf("ABIs grew too much: %d -> %d", r1a.Total, r2a.Total)
	}
	// ABIs are never in IXP space; a substantial share is WHOIS-only
	// (Amazon's unannounced interconnect pool).
	if r2a.IXP != 0 {
		t.Errorf("%d IXP ABIs", r2a.IXP)
	}
	if r2a.Whois == 0 {
		t.Error("no WHOIS-only ABIs")
	}
	if r2c.IXP == 0 {
		t.Error("no IXP CBIs")
	}
}

func TestTable2Shape(t *testing.T) {
	res := smallRun(t)
	v := res.Verified
	total := len(res.Border.CandidateABIs())
	confirmed := total - v.UnconfirmedABIs
	if float64(confirmed) < 0.6*float64(total) {
		t.Errorf("heuristics confirmed %d/%d ABIs; paper confirms ~88%%", confirmed, total)
	}
	if v.UnconfirmedABIs == 0 {
		t.Error("every ABI confirmed; the paper leaves ~10% unmatched")
	}
}

func TestTable3Shape(t *testing.T) {
	res := smallRun(t)
	p := res.Pinning
	for _, src := range []string{"dns", "ixp", "metro", "native"} {
		if p.Exclusive[src] == 0 {
			t.Errorf("anchor source %s contributed nothing", src)
		}
	}
	if p.Exclusive["alias"]+p.Exclusive["min-rtt"] == 0 {
		t.Error("co-presence rules pinned nothing")
	}
	// Cumulative is monotone over the fixed column order.
	order := []string{"dns", "ixp", "metro", "native", "alias", "min-rtt"}
	prev := 0
	for _, k := range order {
		if p.Cumulative[k] < prev {
			t.Errorf("cumulative not monotone at %s", k)
		}
		prev = p.Cumulative[k]
	}
}

func TestPinningCoverageAndAccuracy(t *testing.T) {
	res := smallRun(t)
	p := res.Pinning
	pinned := len(p.Metro)
	if pinned == 0 {
		t.Fatal("nothing pinned")
	}
	frac := float64(pinned) / float64(p.TotalIfaces)
	// The paper pins ~50% at metro level; accept a broad band.
	if frac < 0.25 || frac > 0.95 {
		t.Errorf("metro-level pinning coverage %.1f%%", 100*frac)
	}
	// Ground-truth accuracy: pins must be overwhelmingly correct.
	tp := res.System.Topology
	correct, wrong, unknown := p.Accuracy(func(addr netblockIP) (geo.MetroID, bool) {
		ifc, ok := tp.IfaceAt(addr)
		if !ok {
			return 0, false
		}
		return tp.IfaceMetro(ifc), true
	})
	_ = unknown
	if correct == 0 {
		t.Fatal("no correct pins")
	}
	if float64(wrong) > 0.1*float64(correct+wrong) {
		t.Errorf("pinning ground-truth error rate too high: %d wrong vs %d correct", wrong, correct)
	}
}

func TestCrossValidationShape(t *testing.T) {
	res := smallRun(t)
	cv := res.PinningCV
	// The paper reports precision 99.3%, recall 57.2%: high precision,
	// moderate recall.
	if cv.Precision < 0.9 {
		t.Errorf("CV precision %.3f; want > 0.9", cv.Precision)
	}
	if cv.Recall <= 0.05 || cv.Recall > 0.995 {
		t.Errorf("CV recall %.3f out of plausible band", cv.Recall)
	}
}

func TestTable4Shape(t *testing.T) {
	res := smallRun(t)
	v := res.VPI
	ms := len(v.Pairwise["microsoft"])
	or := len(v.Pairwise["oracle"])
	if ms == 0 {
		t.Error("no Amazon-Microsoft VPI overlap; Table 4's largest cell is empty")
	}
	if or != 0 {
		t.Errorf("%d Amazon-Oracle overlaps; the paper reports zero", or)
	}
	if len(v.Pairwise["google"]) > ms {
		t.Error("google overlap exceeds microsoft; Table 4 has microsoft dominant")
	}
	// Cumulative growth is monotone in probing order.
	prev := 0
	for _, cloud := range v.Order {
		if v.Cumulative[cloud] < prev {
			t.Errorf("cumulative VPI count shrank at %s", cloud)
		}
		prev = v.Cumulative[cloud]
	}
	// VPIs are a minority but meaningful share (paper: ~20%).
	frac := float64(len(v.VPICBIs)) / float64(v.AmazonNonIXPCBIs)
	if frac <= 0.01 || frac > 0.6 {
		t.Errorf("VPI share %.1f%% outside plausible band", 100*frac)
	}
}

func TestTable5Shape(t *testing.T) {
	res := smallRun(t)
	g := res.Groups
	for _, name := range []string{"Pb-nB", "Pr-nB-nV", "Pr-nB-V", "Pr-B-nV"} {
		if g.Rows[name].ASes == 0 {
			t.Errorf("group %s empty", name)
		}
	}
	// Pb has the most ASes; Pr-B the fewest (paper: 76% / 33% / 3%).
	pb, prnb, prb := g.Aggregates["Pb"].ASes, g.Aggregates["Pr-nB"].ASes, g.Aggregates["Pr-B"].ASes
	if !(pb > prnb && prnb > prb) {
		t.Errorf("aggregate AS ordering wrong: Pb=%d Pr-nB=%d Pr-B=%d", pb, prnb, prb)
	}
	// Pr-B averages far more CBIs per AS than Pb (65 vs 2 in the paper).
	if prb > 0 && pb > 0 {
		prbAvg := float64(g.Aggregates["Pr-B"].CBIs) / float64(prb)
		pbAvg := float64(g.Aggregates["Pb"].CBIs) / float64(pb)
		if prbAvg <= pbAvg {
			t.Errorf("CBIs/AS: Pr-B %.1f <= Pb %.1f", prbAvg, pbAvg)
		}
	}
	// Hidden share near a third (paper: 33.29%); accept a broad band.
	if g.HiddenShare < 0.1 || g.HiddenShare > 0.6 {
		t.Errorf("hidden share %.1f%%", 100*g.HiddenShare)
	}
}

func TestTable6Shape(t *testing.T) {
	res := smallRun(t)
	g := res.Groups
	if len(g.Combos) < 5 {
		t.Fatalf("only %d hybrid combos", len(g.Combos))
	}
	// The most common combo must be pure Pb-nB (paper: 2187 ASes).
	if g.Combos[0].Combo != "Pb-nB" {
		t.Errorf("largest combo is %q, want Pb-nB", g.Combos[0].Combo)
	}
	total := 0
	for _, c := range g.Combos {
		total += c.ASNs
	}
	if total != g.PeerASes {
		t.Errorf("combo total %d != peer ASes %d", total, g.PeerASes)
	}
}

func TestBGPCoverage(t *testing.T) {
	res := smallRun(t)
	g := res.Groups
	if g.BGPReported == 0 {
		t.Fatal("no Amazon links in BGP")
	}
	if g.CoveragePct < 75 {
		t.Errorf("found only %.0f%% of BGP-reported peerings (paper: ~93%%)", g.CoveragePct)
	}
	if g.BeyondBGP < g.BGPReported {
		t.Errorf("beyond-BGP peerings (%d) should dwarf BGP-reported (%d)", g.BeyondBGP, g.BGPReported)
	}
}

func TestDXDNSEvidence(t *testing.T) {
	res := smallRun(t)
	if res.Groups.DXNames == 0 {
		t.Error("no Direct-Connect DNS evidence on Pr-nB CBIs (§7.3 expects some)")
	}
}

func TestFig7Shape(t *testing.T) {
	res := smallRun(t)
	gr := res.Graph
	if gr.Edges == 0 || gr.ABICount == 0 || gr.CBICount == 0 {
		t.Fatal("empty ICG")
	}
	// Giant-component formation is a percolation effect: dual-homed remote
	// circuits bridge per-facility blobs, and the bridge count scales with
	// the peer population while the facility count does not. At the small
	// test scale we only require clear super-facility merging; the
	// paper-scale experiment harness checks the >90% figure.
	// (Measured: ~10% at scale 0.04, ~60% at scale 0.2, >80% at scale 1.)
	if gr.LargestCCFrac < 0.08 {
		t.Errorf("largest CC holds %.0f%%; expected at least facility-level merging", 100*gr.LargestCCFrac)
	}
	// ABI degrees are skewed: the max must well exceed the median. (The
	// paper's 1000-degree ABIs are IXP ports with hundreds of members,
	// which only exist at full scale.)
	n := len(gr.ABIDegrees)
	if gr.ABIDegrees[n-1] < 3*gr.ABIDegrees[n/2] {
		t.Errorf("ABI degree distribution not skewed: median %v max %v",
			gr.ABIDegrees[n/2], gr.ABIDegrees[n-1])
	}
	if gr.BothPinned > 0 && gr.IntraMetroShare < 0.5 {
		t.Errorf("only %.0f%% of pinned peerings intra-metro; paper reports 98%%", 100*gr.IntraMetroShare)
	}
}

func TestFigure4Knees(t *testing.T) {
	res := smallRun(t)
	p := res.Pinning
	if p.NativeKnee < 0.4 || p.NativeKnee > 3.1 {
		t.Errorf("Fig 4a knee %.2f ms; paper observes ~2 ms", p.NativeKnee)
	}
	if p.SegKnee < 0.4 || p.SegKnee > 3.1 {
		t.Errorf("Fig 4b knee %.2f ms; paper observes ~2 ms", p.SegKnee)
	}
	if len(p.ABIMinRTTs) == 0 || len(p.SegmentDiffs) == 0 {
		t.Fatal("missing figure data")
	}
}
