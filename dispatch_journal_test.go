package cloudmap

// Trace-context propagation acceptance: a campaign dispatched across a
// chaos-ridden agent fleet must journal exactly what a local run journals.
// Agents execute chunks under RemoteSpan-derived children of the
// controller's stage span and ship the captured events back with the result
// frame; only the winning lease's events are imported, and lease lifecycle
// noise (redispatch, hedging, local fallback) never reaches the journal —
// so the sorted journal stays a pure function of the run config.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"cloudmap/internal/datasets"
	"cloudmap/internal/dispatch"
	"cloudmap/internal/faults"
)

// journalRunDispatched mirrors journalRun with the campaign leased to a
// 3-agent fleet: one chaos-crashed, one stalled past every lease deadline,
// one healthy.
func journalRunDispatched(t *testing.T, workers int, dir string) ([]string, *TraceReport) {
	t.Helper()
	cfg := chaosConfig(t)
	dirty, err := datasets.LoadDirtyPlan("testdata/dirtyplans/moderate.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dirty = dirty
	cfg.Workers = workers

	agentSys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := dispatch.Fingerprint(cfg.Topology, cfg.Faults)
	crash := chaosAgent(t, agentSys, "chaos-crash", fp,
		&faults.AgentPlan{Seed: 1, WindowChunks: 1, Crash: &faults.AgentCrashPlan{Prob: 1}})
	stall := chaosAgent(t, agentSys, "chaos-stall", fp,
		&faults.AgentPlan{Seed: 1, WindowChunks: 1, Stall: &faults.AgentStallPlan{Prob: 1, Sec: 30}})
	healthy := chaosAgent(t, agentSys, "healthy", fp, &faults.AgentPlan{Seed: 1})

	journal := filepath.Join(dir, "journal.jsonl")
	_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{
		JournalPath: journal,
		Dispatch: &dispatch.Options{
			Agents:       []string{crash.URL, stall.URL, healthy.URL},
			LeaseTimeout: 500 * time.Millisecond,
			RetryBackoff: 10 * time.Millisecond,
			Heartbeat:    100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	sort.Strings(lines)
	return lines, rep.Manifest.Trace
}

// TestDispatchedJournalByteIdentical: the sorted journal of a distributed
// chaos run equals the local baseline's byte for byte, at both ends of the
// worker-count range, and the manifest span counts agree.
func TestDispatchedJournalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple pipeline runs skipped in -short mode")
	}
	base, baseTrace := journalRun(t, 1, t.TempDir())
	for _, workers := range []int{1, 8} {
		got, gotTrace := journalRunDispatched(t, workers, t.TempDir())
		if len(got) != len(base) {
			t.Fatalf("workers=%d: journal length %d, local baseline %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: sorted journals diverge at line %d:\ndispatched: %s\nlocal:      %s",
					workers, i, got[i], base[i])
			}
		}
		if gotTrace == nil || baseTrace == nil {
			t.Fatal("manifest trace section missing")
		}
		for k, n := range baseTrace.Spans {
			if gotTrace.Spans[k] != n {
				t.Fatalf("workers=%d: span count %s: %d dispatched, %d local", workers, k, gotTrace.Spans[k], n)
			}
		}
		// The chunk events in the journal must really have crossed the wire:
		// a fleet with a healthy agent does not fall back to local for every
		// chunk (the chunk spans would be identical either way — that is the
		// point — so check the chunk kind is present at all, too).
		var chunks int
		for _, ln := range got {
			var ev struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(ln), &ev); err != nil {
				t.Fatalf("bad journal line %q: %v", ln, err)
			}
			if ev.Kind == "chunk" {
				chunks++
			}
		}
		if chunks == 0 {
			t.Fatalf("workers=%d: no chunk events in the dispatched journal", workers)
		}
	}
}
