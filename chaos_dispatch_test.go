package cloudmap

// Distributed-execution chaos: the acceptance test for the dispatch layer.
// A campaign leased to a fleet where one agent chaos-crashes mid-chunk and
// another stalls past every lease deadline must still produce a report
// byte-identical to the single-process run — re-leasing, hedging, and local
// fallback change who does the work, never the bytes.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"cloudmap/internal/dispatch"
	"cloudmap/internal/faults"
	"cloudmap/internal/metrics"
)

// chaosAgent spins up one in-process agent over httptest. A chaos crash
// cannot os.Exit the test binary, so the Exit hook kills the agent the way
// a dead process looks from outside: the listener closes and every open
// connection drops mid-request.
func chaosAgent(t *testing.T, sys *System, id, fp string, plan *faults.AgentPlan) *httptest.Server {
	t.Helper()
	chaos, err := plan.Bind(id)
	if err != nil {
		t.Fatal(err)
	}
	var srv *httptest.Server
	agent := dispatch.NewAgent(dispatch.AgentOptions{
		ID: id, Prober: sys.Prober, Fingerprint: fp, Chaos: chaos,
		Exit: func(string) {
			srv.Listener.Close()
			srv.CloseClientConnections()
		},
	})
	srv = httptest.NewServer(agent.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestChaosDistributedByteIdentical: a 3-agent distributed run of the
// faulted pipeline — one agent crashed by its chaos plan, one stalled past
// the lease deadline on every chunk, one healthy — at a different worker
// count than the local baseline, must reproduce the baseline's report and
// summary byte for byte.
func TestChaosDistributedByteIdentical(t *testing.T) {
	baseline, baseRep := chaosRun(t) // shared local run, default workers

	cfg := chaosConfig(t)
	cfg.Workers = 2 // byte-identity must hold at any worker count

	// The agents share one world built from the same config; the prober is
	// stateless across chunks, so one instance serves all three.
	agentSys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := dispatch.Fingerprint(cfg.Topology, cfg.Faults)
	crashPlan := &faults.AgentPlan{Seed: 1, WindowChunks: 1, Crash: &faults.AgentCrashPlan{Prob: 1}}
	stallPlan := &faults.AgentPlan{Seed: 1, WindowChunks: 1, Stall: &faults.AgentStallPlan{Prob: 1, Sec: 30}}
	healthyPlan := &faults.AgentPlan{Seed: 1}
	crash := chaosAgent(t, agentSys, "chaos-crash", fp, crashPlan)
	stall := chaosAgent(t, agentSys, "chaos-stall", fp, stallPlan)
	healthy := chaosAgent(t, agentSys, "healthy", fp, healthyPlan)

	reg := metrics.NewRegistry()
	res, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{
		Dispatch: &dispatch.Options{
			Agents:       []string{crash.URL, stall.URL, healthy.URL},
			LeaseTimeout: 500 * time.Millisecond,
			RetryBackoff: 10 * time.Millisecond,
			Heartbeat:    100 * time.Millisecond,
			Metrics:      reg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := res.Report(), baseline.Report(); got != want {
		t.Errorf("distributed report diverged from single-process run (%d vs %d bytes)", len(got), len(want))
	}
	if got, want := len(rep.Manifest.Summary), len(baseRep.Manifest.Summary); got != want {
		t.Fatalf("summary key count %d != %d", got, want)
	}
	for k, want := range baseRep.Manifest.Summary {
		if got := rep.Manifest.Summary[k]; got != want {
			t.Errorf("summary[%q] = %v, want %v", k, got, want)
		}
	}

	// The failure schedule must actually have fired: the crash agent was
	// lost, the stall agent expired leases, and work still flowed remotely.
	granted := reg.Counter("dispatch.leases_granted").Value()
	expired := reg.Counter("dispatch.leases_expired").Value()
	lost := reg.Counter("dispatch.agents_lost").Value()
	if granted == 0 {
		t.Error("no leases granted: the run never went distributed")
	}
	if lost == 0 {
		t.Error("no agent marked lost despite a chaos crash")
	}
	if expired == 0 {
		t.Error("no lease expired despite a permanently stalled agent")
	}
}
