package cloudmap

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"cloudmap/internal/datasets"
	"cloudmap/internal/pipeline"
)

// hygieneConfig is the dirty-data twin of SmallConfig: same seed and
// topology, plus the checked-in moderate dirty plan.
func hygieneConfig(t *testing.T) Config {
	t.Helper()
	plan, err := datasets.LoadDirtyPlan("testdata/dirtyplans/moderate.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SmallConfig()
	cfg.Dirty = plan
	return cfg
}

var (
	hygOnce sync.Once
	hygRes  *Result
	hygRep  *RunReport
	hygErr  error
)

// hygieneRun executes the dirty-data pipeline once for the whole test
// binary.
func hygieneRun(t *testing.T) (*Result, *RunReport) {
	t.Helper()
	hygOnce.Do(func() {
		hygRes, hygRep, hygErr = RunPipeline(context.Background(), nil, hygieneConfig(t), RunOptions{})
	})
	if hygErr != nil {
		t.Fatal(hygErr)
	}
	return hygRes, hygRep
}

// TestHygieneCleanManifest: a clean run still round-trips every dataset
// through the hygiene layer — the manifest carries a dataset_hygiene
// section with zero quarantines, and no degradation section appears.
func TestHygieneCleanManifest(t *testing.T) {
	res := smallRun(t)
	rep := smallReport(t)
	h := rep.Manifest.DatasetHygiene
	if h == nil {
		t.Fatal("clean run has no dataset_hygiene manifest section")
	}
	if h.TotalQuarantined != 0 || h.TotalConflicts != 0 || len(h.EmptyDatasets) != 0 {
		t.Fatalf("clean run dirtied its own datasets: %+v", h)
	}
	if h.TotalKept == 0 {
		t.Fatal("clean run kept no dataset records")
	}
	for _, ds := range datasets.Datasets {
		if s := h.Datasets[ds]; s == nil || s.Kept == 0 {
			t.Errorf("dataset %s missing or empty in clean hygiene report", ds)
		}
	}
	if rep.Manifest.Degradation != nil {
		t.Errorf("clean run has a degradation section: %+v", rep.Manifest.Degradation)
	}
	if res.Hygiene == nil || res.Hygiene.Registry == nil {
		t.Fatal("result carries no hygiene view")
	}
	if len(res.Verified.LowConfidence) != 0 {
		t.Errorf("clean run marked %d interfaces low-confidence", len(res.Verified.LowConfidence))
	}
}

// TestHygienePrecisionHoldsCoverageDegrades is the chaos acceptance
// criterion: under the moderate dirty plan the pinning cross-validation
// keeps its precision (drop < 2 points versus the clean twin) while
// coverage degrades smoothly — dirty inputs lose records and therefore
// reach, not correctness.
func TestHygienePrecisionHoldsCoverageDegrades(t *testing.T) {
	base := smallRun(t)
	dirty, _ := hygieneRun(t)

	bp, dp := base.PinningCV.Precision, dirty.PinningCV.Precision
	if dp < bp-0.02 {
		t.Errorf("precision collapsed under dirty datasets: %.4f -> %.4f (drop %.4f >= 0.02)", bp, dp, bp-dp)
	}
	br, dr := base.PinningCV.Recall, dirty.PinningCV.Recall
	if dr > br+0.02 {
		t.Errorf("recall inflated under dirty datasets: %.4f -> %.4f", br, dr)
	}
	if dr < br/2 {
		t.Errorf("recall collapsed under dirty datasets: %.4f -> %.4f (more than halved)", br, dr)
	}
}

// TestHygieneManifestDegradation: a dirty run's manifest must say so —
// quarantine totals in the degradation section, the datasets stage marked
// degraded, and the §8 bdrmap baseline sitting the run out.
func TestHygieneManifestDegradation(t *testing.T) {
	res, rep := hygieneRun(t)

	h := rep.Manifest.DatasetHygiene
	if h == nil || h.TotalQuarantined == 0 {
		t.Fatalf("dirty run's dataset_hygiene section missing or empty: %+v", h)
	}
	deg := rep.Manifest.Degradation
	if deg == nil {
		t.Fatal("dirty run has no manifest degradation section")
	}
	if deg.QuarantinedRecords != h.TotalQuarantined {
		t.Errorf("degradation quarantine count %d != hygiene report %d", deg.QuarantinedRecords, h.TotalQuarantined)
	}
	if deg.ConflictsResolved == 0 {
		t.Error("moderate plan resolved no origin conflicts")
	}
	found := false
	for _, name := range deg.DegradedStages {
		if name == "datasets" {
			found = true
		}
	}
	if !found {
		t.Errorf("datasets stage not in DegradedStages: %v", deg.DegradedStages)
	}
	for _, sr := range rep.Manifest.Stages {
		if sr.Name == "bdrmap" && sr.Status != pipeline.StatusSkippedDegraded {
			t.Errorf("bdrmap status = %q, want %q (must not compare a clean baseline against dirty-data inference)", sr.Status, pipeline.StatusSkippedDegraded)
		}
	}
	if res.Bdrmap != nil {
		t.Error("bdrmap result present despite dirty datasets")
	}
	// Conflict-resolved origins surface as low-confidence labels downstream.
	if len(res.Verified.LowConfidence) == 0 {
		t.Error("dirty run marked nothing low-confidence")
	}
}

// TestHygieneReplayIdentical: the same seed and plan replay the
// dataset_hygiene section byte-identically, at any worker count.
func TestHygieneReplayIdentical(t *testing.T) {
	res1, rep1 := hygieneRun(t)
	for _, workers := range []int{1, 2} {
		cfg := hygieneConfig(t)
		cfg.Workers = workers
		res2, rep2, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		h1, err := json.Marshal(rep1.Manifest.DatasetHygiene)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := json.Marshal(rep2.Manifest.DatasetHygiene)
		if err != nil {
			t.Fatal(err)
		}
		if string(h1) != string(h2) {
			t.Fatalf("dataset_hygiene differs at workers=%d:\n  %s\n  %s", workers, h1, h2)
		}
		if res1.Report() != res2.Report() {
			t.Fatalf("dirty-run report depends on worker count (%d)", workers)
		}
	}
}

// TestHygieneEmptyDatasetDegradesDependents: a plan that quarantines an
// entire dataset marks it empty and the stages that cite it run degraded
// instead of asserting unlabeled results.
func TestHygieneEmptyDatasetDegradesDependents(t *testing.T) {
	cfg := SmallConfig()
	cfg.Dirty = &datasets.DirtyPlan{Seed: 11, Datasets: map[string]datasets.Dirt{
		datasets.DSFacilities: {DropFrac: 1.0},
	}}
	_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Manifest.DatasetHygiene
	if h == nil || len(h.EmptyDatasets) != 1 || h.EmptyDatasets[0] != datasets.DSFacilities {
		t.Fatalf("empty datasets = %+v, want [facilities]", h)
	}
	deg := rep.Manifest.Degradation
	if deg == nil {
		t.Fatal("run with a wiped dataset has no degradation section")
	}
	foundPinning := false
	for _, name := range deg.DegradedStages {
		if name == "pinning" {
			foundPinning = true
		}
	}
	if !foundPinning {
		t.Errorf("pinning not degraded despite empty facilities: %v", deg.DegradedStages)
	}
	if len(deg.EmptyDatasets) != 1 || deg.EmptyDatasets[0] != datasets.DSFacilities {
		t.Errorf("degradation empty datasets = %v, want [facilities]", deg.EmptyDatasets)
	}
}

// TestDegradationReportDatasetOnly: a run whose only adversity is dataset
// quarantine (zero probe loss, zero retries) still produces a non-nil
// degradation section — dirty inputs alone must not read as a clean run.
func TestDegradationReportDatasetOnly(t *testing.T) {
	st := &pipeState{
		hyg: &datasets.View{Report: &datasets.HygieneReport{
			Datasets:         map[string]*datasets.DatasetSummary{},
			TotalQuarantined: 3,
		}},
	}
	rep := degradationReport(st, nil)
	if rep == nil {
		t.Fatal("quarantine-only degradation reported as nil")
	}
	if rep.QuarantinedRecords != 3 || rep.RetriesSpent != 0 || rep.ProbeLossPct != 0 {
		t.Fatalf("unexpected degradation report: %+v", rep)
	}
	// And with nothing at all, the report stays nil.
	if rep := degradationReport(&pipeState{}, nil); rep != nil {
		t.Fatalf("empty state produced a degradation report: %+v", rep)
	}
}

// TestConfigHashDirtyPlan: the dirty plan participates in the config hash
// by value, so a resume cannot mix checkpoints from different plans.
func TestConfigHashDirtyPlan(t *testing.T) {
	base := configHash(SmallConfig())
	mk := func(seed uint64) Config {
		cfg := SmallConfig()
		cfg.Dirty = &datasets.DirtyPlan{Seed: seed, Datasets: map[string]datasets.Dirt{
			datasets.DSRib: {DropFrac: 0.1},
		}}
		return cfg
	}
	if configHash(mk(7)) != configHash(mk(7)) {
		t.Error("equal dirty plans at different addresses hash differently")
	}
	if configHash(mk(7)) == base {
		t.Error("dirty plan does not affect the config hash")
	}
	if configHash(mk(8)) == configHash(mk(7)) {
		t.Error("dirty plan seed does not affect the config hash")
	}
}
