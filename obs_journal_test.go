package cloudmap

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"cloudmap/internal/datasets"
)

// journalRun executes the faulted + dirty small pipeline with the journal
// and Chrome trace enabled, returning the sorted journal lines and the
// manifest's trace section.
func journalRun(t *testing.T, workers int, dir string) ([]string, *TraceReport) {
	t.Helper()
	cfg := chaosConfig(t)
	dirty, err := datasets.LoadDirtyPlan("testdata/dirtyplans/moderate.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dirty = dirty
	cfg.Workers = workers

	journal := filepath.Join(dir, "journal.jsonl")
	trace := filepath.Join(dir, "trace.json")
	_, rep, err := RunPipeline(context.Background(), nil, cfg, RunOptions{
		JournalPath: journal,
		TracePath:   trace,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	sort.Strings(lines)

	// The Chrome trace must be valid trace-event JSON.
	traw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(traw, &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	return lines, rep.Manifest.Trace
}

// TestJournalDeterminism: the event journal is a pure function of the run
// config. A moderate fault plan plus a moderate dirty plan at 1 worker and
// at 8 workers must produce identical journals once sorted (worker
// scheduling permutes emission order, nothing else), identical span counts
// in the manifest, and events of every instrumented kind.
func TestJournalDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run skipped in -short mode")
	}
	seq, seqTrace := journalRun(t, 1, t.TempDir())
	par, parTrace := journalRun(t, 8, t.TempDir())

	if len(seq) != len(par) {
		t.Fatalf("journal length differs: %d lines at workers=1, %d at workers=8", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sorted journals diverge at line %d:\nworkers=1: %s\nworkers=8: %s", i, seq[i], par[i])
		}
	}

	if seqTrace == nil || parTrace == nil {
		t.Fatal("manifest trace section missing")
	}
	for k, n := range seqTrace.Spans {
		if parTrace.Spans[k] != n {
			t.Fatalf("span count %s: %d at workers=1, %d at workers=8", k, n, parTrace.Spans[k])
		}
	}

	// The faulted + dirty run must exercise the full event taxonomy.
	kinds := map[string]int{}
	for _, ln := range seq {
		var ev struct {
			Kind string `json:"kind"`
			Ev   string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", ln, err)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []string{"run", "stage", "chunk", "fault", "retry", "quarantine"} {
		if kinds[want] == 0 {
			t.Fatalf("journal has no %q events (kinds: %v)", want, kinds)
		}
	}
}
