package cloudmap

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestInferenceNeverImportsGroundTruth enforces the repository's central
// honesty rule: the inference packages must work from measurements and
// public datasets alone. Any import of internal/model (ground truth) or
// internal/topo (the generator) from non-test inference code would let the
// pipeline cheat; this test makes such a change fail CI.
func TestInferenceNeverImportsGroundTruth(t *testing.T) {
	inferencePkgs := []string{
		"internal/border",
		"internal/verify",
		"internal/pinning",
		"internal/vpi",
		"internal/grouping",
		"internal/icg",
		"internal/bdrmap",
	}
	forbidden := []string{
		"cloudmap/internal/model",
		"cloudmap/internal/topo",
		"cloudmap/internal/route",
		// The fault fabric is part of the simulated measurement plane;
		// inference must see its effects only through the traces.
		"cloudmap/internal/faults",
	}
	fset := token.NewFileSet()
	for _, pkg := range inferencePkgs {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatalf("read %s: %v", pkg, err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(pkg, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				impPath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				for _, bad := range forbidden {
					if impPath == bad {
						t.Errorf("%s imports %s: inference code must not see ground truth", path, bad)
					}
				}
			}
		}
	}
}
