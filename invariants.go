package cloudmap

// The pre-report invariant checker: before the evaluate stage digests the
// run into its manifest summary, verify that every reported inference
// output cites dataset records that survived the hygiene layer. The
// checker never edits results — a violation means some stage asserted
// something its evidence base no longer supports, so the honest response
// is to degrade the run (the violation lands in the manifest's
// degradation section) rather than emit a silently-wrong report.

import (
	"context"
	"fmt"

	"cloudmap/internal/pinning"
	"cloudmap/internal/pipeline"
	"cloudmap/internal/verify"
)

// invariants runs the pre-report checks.
func (s *pipeState) invariants(_ context.Context, sc *pipeline.StageContext) error {
	ver := s.res.Verified
	pin := s.res.Pinning
	if ver == nil || pin == nil {
		return nil
	}
	reg := s.reg()

	// Invariant 1: every verified CBI carries an owner organisation or a
	// low-confidence mark. IXP-LAN interfaces with a published-assignment
	// gap and private-space client interfaces are legitimately ownerless.
	var ownerViol int64
	for cbi, ann := range ver.CBIs {
		owner := ver.OwnerASN[cbi]
		if owner != 0 && reg.OrgOf(owner) != "" {
			continue
		}
		if _, marked := ver.LowConfidence[cbi]; marked {
			continue
		}
		if owner == 0 && (ann.IXP >= 0 || cbi.IsPrivate() || cbi.IsShared()) {
			continue
		}
		ownerViol++
	}

	// Invariant 2: every IXP-verified ABI cites a CBI inside a surviving
	// IXP prefix.
	var ixpViol int64
	for abi, ev := range ver.EvidenceFor {
		if ev&verify.EvIXP == 0 {
			continue
		}
		cited := false
		if ai := s.inf.ABIs[abi]; ai != nil {
			for cbi := range ai.CBIs {
				if _, ok := reg.IXPOf(cbi); ok {
					cited = true
					break
				}
			}
		}
		if !cited {
			ixpViol++
		}
	}

	// Invariant 3: every pinning anchor cites surviving dataset rows — a
	// DNS anchor a surviving rDNS record, an IXP anchor a surviving
	// single-metro exchange, a metro anchor a surviving single-metro
	// footprint. Native anchors rest on RTT measurements, not datasets.
	var anchorViol int64
	singles := reg.SingleMetroASNs()
	for addr, src := range pin.AnchorSource {
		switch src {
		case pinning.SrcDNS:
			if reg.DNS[addr] == "" {
				anchorViol++
			}
		case pinning.SrcIXP:
			ix, ok := reg.IXPOf(addr)
			if !ok || len(reg.IXPs[ix].Cities) != 1 {
				anchorViol++
			}
		case pinning.SrcMetro:
			owner := ver.OwnerASN[addr]
			if _, single := singles[owner]; owner == 0 || !single {
				anchorViol++
			}
		}
	}

	sc.Counter("checked-cbis").Add(int64(len(ver.CBIs)))
	sc.Counter("checked-anchors").Add(int64(len(pin.AnchorSource)))
	if ownerViol > 0 {
		sc.Counter("violations-owner-org").Add(ownerViol)
	}
	if ixpViol > 0 {
		sc.Counter("violations-ixp-evidence").Add(ixpViol)
	}
	if anchorViol > 0 {
		sc.Counter("violations-anchor-evidence").Add(anchorViol)
	}
	if total := ownerViol + ixpViol + anchorViol; total > 0 {
		sc.Degrade(fmt.Sprintf("invariants: %d outputs cite quarantined or missing dataset records (%d ownerless CBIs, %d IXP evidence, %d anchors)",
			total, ownerViol, ixpViol, anchorViol))
	}
	return nil
}
